// Package lint is a structural static-analysis pass over CSR netlists.
//
// A lint run walks a netlist once per enabled rule and reports
// Findings — structural defects such as multi-driven nets,
// combinational loops, or dangling logic. Every rule is O(pins) (the
// loop rule is O(cells + pins) via one iterative Tarjan sweep), so a
// million-cell netlist lints in seconds.
//
// Rules that reason about signal flow (drivers vs. sinks) require the
// netlist's optional direction annotation (netlist.Directed); on an
// undirected netlist those rules are skipped and the report says so —
// silence on an undirected netlist is not a clean bill of health.
//
// Findings carry a stable fingerprint derived from the rule id and
// the names (or, for anonymous objects, ids) of the anchoring
// cell/net. Fingerprints survive unrelated edits to the netlist, so
// they are the unit of suppression and report diffing.
package lint

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"tanglefind/internal/netlist"
)

// Severity ranks findings. The zero value is Info.
type Severity int8

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int8(s))
}

// ParseSeverity parses "info", "warning" or "error".
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return SevInfo, nil
	case "warning", "warn":
		return SevWarning, nil
	case "error":
		return SevError, nil
	}
	return 0, fmt.Errorf("lint: unknown severity %q (want info, warning or error)", s)
}

func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

func (s *Severity) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	v, err := ParseSeverity(str)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Finding is one reported defect. Cell/Net anchor the finding in the
// netlist (-1 when the axis does not apply); Fingerprint is a stable
// hex key for suppression and diffing (see the package comment).
type Finding struct {
	Rule        string         `json:"rule"`
	Severity    Severity       `json:"severity"`
	Cell        netlist.CellID `json:"cell"`
	Net         netlist.NetID  `json:"net"`
	CellName    string         `json:"cell_name,omitempty"`
	NetName     string         `json:"net_name,omitempty"`
	Msg         string         `json:"msg"`
	Fingerprint string         `json:"fingerprint"`
}

// Rule is one structural check. Implementations must be stateless:
// Check may be called concurrently on different passes.
type Rule interface {
	// ID is the stable rule name used in configs, fingerprints and
	// reports (kebab-case, e.g. "multi-driven-net").
	ID() string
	Severity() Severity
	// Doc is a one-line description for rule listings.
	Doc() string
	// NeedsDirection reports whether the rule requires the netlist's
	// driver annotation; such rules are skipped on undirected netlists.
	NeedsDirection() bool
	// Local reports whether every finding of this rule depends only on
	// the anchoring cell/net and its immediate pins. Local rules can be
	// re-checked on the dirty neighborhood after a delta; global rules
	// (loops, reachability) are re-run in full.
	Local() bool
	Check(p *Pass) []Finding
}

// Config selects and parameterizes rules. The zero value enables every
// registered rule with default thresholds.
type Config struct {
	// Enable, when non-empty, restricts the run to exactly these rule
	// ids. Disable removes rules from whatever Enable selected.
	Enable  []string `json:"enable,omitempty"`
	Disable []string `json:"disable,omitempty"`

	// MaxFanout is the net size at which high-fanout-net fires
	// (default 64).
	MaxFanout int `json:"max_fanout,omitempty"`
	// MinChain is the shortest buffer chain worth reporting
	// (default 3).
	MinChain int `json:"min_chain,omitempty"`
	// MaxFindingsPerRule truncates runaway rules (default 10000);
	// truncation is recorded in the report, never silent.
	MaxFindingsPerRule int `json:"max_findings_per_rule,omitempty"`

	// Name heuristics, matched case-insensitively. SizeOnlyPatterns are
	// substrings marking size-only/structural cells; TiePatterns mark
	// constant-source cells; SeqPrefixes mark sequential cells excluded
	// from combinational-loop analysis.
	SizeOnlyPatterns []string `json:"size_only_patterns,omitempty"`
	TiePatterns      []string `json:"tie_patterns,omitempty"`
	SeqPrefixes      []string `json:"seq_prefixes,omitempty"`
}

// normalized returns a copy with defaults filled in and all lists
// sorted and lower-cased, so equal configurations have equal cache
// keys regardless of how they were written.
func (c Config) normalized() Config {
	n := c
	if n.MaxFanout <= 0 {
		n.MaxFanout = 64
	}
	if n.MinChain <= 0 {
		n.MinChain = 3
	}
	if n.MaxFindingsPerRule <= 0 {
		n.MaxFindingsPerRule = 10000
	}
	if n.SizeOnlyPatterns == nil {
		n.SizeOnlyPatterns = []string{"size_only"}
	}
	if n.TiePatterns == nil {
		n.TiePatterns = []string{"tie", "const", "vcc", "gnd", "logic0", "logic1"}
	}
	if n.SeqPrefixes == nil {
		n.SeqPrefixes = []string{"dff", "sdff", "ff", "lat", "reg"}
	}
	n.Enable = canonList(n.Enable)
	n.Disable = canonList(n.Disable)
	n.SizeOnlyPatterns = canonList(n.SizeOnlyPatterns)
	n.TiePatterns = canonList(n.TiePatterns)
	n.SeqPrefixes = canonList(n.SeqPrefixes)
	return n
}

func canonList(in []string) []string {
	out := make([]string, 0, len(in))
	for _, s := range in {
		out = append(out, strings.ToLower(strings.TrimSpace(s)))
	}
	sort.Strings(out)
	return out
}

// CacheKey returns a canonical serialization of the config: two
// configs with the same key request the same lint run, so the key is
// safe to use (together with the netlist digest) as a result-cache
// key.
func (c Config) CacheKey() string {
	b, err := json.Marshal(c.normalized())
	if err != nil { // struct of plain fields; cannot fail
		panic(err)
	}
	return string(b)
}

func (c *Config) ruleEnabled(id string) bool {
	if len(c.Enable) > 0 {
		i := sort.SearchStrings(c.Enable, id)
		if i >= len(c.Enable) || c.Enable[i] != id {
			return false
		}
	}
	i := sort.SearchStrings(c.Disable, id)
	return i >= len(c.Disable) || c.Disable[i] != id
}

// SkippedRule records a rule that did not run and why.
type SkippedRule struct {
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
}

// RuleStat is per-rule accounting for one run.
type RuleStat struct {
	Rule      string `json:"rule"`
	Findings  int    `json:"findings"`
	Truncated int    `json:"truncated,omitempty"`
	Nanos     int64  `json:"nanos"`
}

// Report is the result of one lint run. Findings are sorted
// canonically (rule, then anchor ids, then fingerprint) so equal
// structural states produce byte-equal reports.
type Report struct {
	Findings []Finding     `json:"findings"`
	Skipped  []SkippedRule `json:"skipped,omitempty"`
	Rules    []RuleStat    `json:"rules"`

	// ConfigKey echoes Config.CacheKey of the run, letting LintDelta
	// verify a previous report matches the requested configuration.
	ConfigKey string `json:"config_key"`

	// Incremental is set by LintDelta; RecheckedCells is the dirty
	// neighborhood it re-examined for local rules (global rules are
	// always re-run in full).
	Incremental    bool `json:"incremental,omitempty"`
	RecheckedCells int  `json:"rechecked_cells,omitempty"`
}

// MaxSeverity returns the highest severity present, or ok=false for a
// clean report.
func (r *Report) MaxSeverity() (Severity, bool) {
	if len(r.Findings) == 0 {
		return 0, false
	}
	max := SevInfo
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max, true
}

// CountBySeverity returns finding counts indexed by severity.
func (r *Report) CountBySeverity() [3]int {
	var n [3]int
	for _, f := range r.Findings {
		n[f.Severity]++
	}
	return n
}

// Pass is the shared state handed to every rule of one run: the
// netlist, the normalized config, a lazily built cell-side direction
// view, and an optional scope restricting local rules to a dirty
// neighborhood (nil scope = whole netlist).
type Pass struct {
	nl  *netlist.Netlist
	cfg *Config
	dir *dirView

	scopeCells []netlist.CellID // sorted, nil = all
	scopeNets  []netlist.NetID  // sorted, nil = all
}

// Netlist returns the netlist under analysis.
func (p *Pass) Netlist() *netlist.Netlist { return p.nl }

// Config returns the normalized configuration of the run.
func (p *Pass) Config() *Config { return p.cfg }

// EachCell invokes f for every cell in scope, ascending.
func (p *Pass) EachCell(f func(netlist.CellID)) {
	if p.scopeCells != nil {
		for _, c := range p.scopeCells {
			f(c)
		}
		return
	}
	for c := 0; c < p.nl.NumCells(); c++ {
		f(netlist.CellID(c))
	}
}

// EachNet invokes f for every net in scope, ascending.
func (p *Pass) EachNet(f func(netlist.NetID)) {
	if p.scopeNets != nil {
		for _, n := range p.scopeNets {
			f(n)
		}
		return
	}
	for n := 0; n < p.nl.NumNets(); n++ {
		f(netlist.NetID(n))
	}
}

// dirView is the cell-side mirror of the net-side driver CSR: for each
// cell, the ascending run of nets it drives. Built once per pass in
// O(driver pins).
type dirView struct {
	outOff []int32
	outNet []netlist.NetID
}

func (p *Pass) dirv() *dirView {
	if p.dir != nil {
		return p.dir
	}
	nl := p.nl
	d := &dirView{
		outOff: make([]int32, nl.NumCells()+1),
		outNet: make([]netlist.NetID, nl.NumDriverPins()),
	}
	for n := 0; n < nl.NumNets(); n++ {
		for _, c := range nl.NetDrivers(netlist.NetID(n)) {
			d.outOff[c+1]++
		}
	}
	for c := 0; c < nl.NumCells(); c++ {
		d.outOff[c+1] += d.outOff[c]
	}
	cursor := make([]int32, nl.NumCells())
	// Visiting nets in ascending id order keeps each cell's run sorted.
	for n := 0; n < nl.NumNets(); n++ {
		for _, c := range nl.NetDrivers(netlist.NetID(n)) {
			d.outNet[d.outOff[c]+cursor[c]] = netlist.NetID(n)
			cursor[c]++
		}
	}
	p.dir = d
	return d
}

// OutNets returns the ascending run of nets driven by cell c. Only
// meaningful on a directed netlist.
func (p *Pass) OutNets(c netlist.CellID) []netlist.NetID {
	d := p.dirv()
	return d.outNet[d.outOff[c]:d.outOff[c+1]]
}

// OutDegree returns how many nets cell c drives.
func (p *Pass) OutDegree(c netlist.CellID) int { return len(p.OutNets(c)) }

// InDegree returns how many nets cell c sinks (pins minus driven).
func (p *Pass) InDegree(c netlist.CellID) int {
	return p.nl.CellDegree(c) - p.OutDegree(c)
}

// EachInNet invokes f for every net cell c sinks, ascending — the
// merge-complement of OutNets within the cell's pin run.
func (p *Pass) EachInNet(c netlist.CellID, f func(netlist.NetID)) {
	out := p.OutNets(c)
	at := 0
	for _, n := range p.nl.CellPins(c) {
		for at < len(out) && out[at] < n {
			at++
		}
		if at < len(out) && out[at] == n {
			continue
		}
		f(n)
	}
}

// EachSink invokes f for every sink pin of net n (pins that are not
// drivers), ascending.
func (p *Pass) EachSink(n netlist.NetID, f func(netlist.CellID)) {
	drv := p.nl.NetDrivers(n)
	at := 0
	for _, c := range p.nl.NetPins(n) {
		for at < len(drv) && drv[at] < c {
			at++
		}
		if at < len(drv) && drv[at] == c {
			continue
		}
		f(c)
	}
}

// cellKey and netKey are the fingerprint identities of netlist
// objects: the name when present, the id otherwise. Named objects keep
// their fingerprint across deltas even when ids shift.
func cellKey(nl *netlist.Netlist, c netlist.CellID) string {
	if s := nl.CellName(c); s != "" {
		return s
	}
	return fmt.Sprintf("c#%d", c)
}

func netKey(nl *netlist.Netlist, n netlist.NetID) string {
	if s := nl.NetName(n); s != "" {
		return s
	}
	return fmt.Sprintf("n#%d", n)
}

func fingerprint(parts ...string) string {
	h := fnv.New64a()
	for _, s := range parts {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// NetFinding builds a finding anchored at a net.
func (p *Pass) NetFinding(r Rule, n netlist.NetID, msg string) Finding {
	return Finding{
		Rule:        r.ID(),
		Severity:    r.Severity(),
		Cell:        -1,
		Net:         n,
		NetName:     p.nl.NetName(n),
		Msg:         msg,
		Fingerprint: fingerprint(r.ID(), netKey(p.nl, n)),
	}
}

// CellFinding builds a finding anchored at a cell.
func (p *Pass) CellFinding(r Rule, c netlist.CellID, msg string) Finding {
	return Finding{
		Rule:        r.ID(),
		Severity:    r.Severity(),
		Cell:        c,
		Net:         -1,
		CellName:    p.nl.CellName(c),
		Msg:         msg,
		Fingerprint: fingerprint(r.ID(), cellKey(p.nl, c)),
	}
}

// GroupFinding builds a finding anchored at a cell but fingerprinted
// over an explicit member set (e.g. every cell of a loop), so the
// fingerprint tracks the group, not just its representative.
func (p *Pass) GroupFinding(r Rule, anchor netlist.CellID, members []string, msg string) Finding {
	parts := make([]string, 0, len(members)+1)
	parts = append(parts, r.ID())
	parts = append(parts, members...)
	return Finding{
		Rule:        r.ID(),
		Severity:    r.Severity(),
		Cell:        anchor,
		Net:         -1,
		CellName:    p.nl.CellName(anchor),
		Msg:         msg,
		Fingerprint: fingerprint(parts...),
	}
}

// Lint runs every enabled registered rule over the netlist.
func Lint(nl *netlist.Netlist, cfg Config) *Report {
	return LintWith(nl, cfg, Rules())
}

// LintWith is Lint with an explicit rule set, for callers bringing
// their own Rule implementations.
func LintWith(nl *netlist.Netlist, cfg Config, rules []Rule) *Report {
	norm := cfg.normalized()
	p := &Pass{nl: nl, cfg: &norm}
	rep := &Report{ConfigKey: cfg.CacheKey()}
	runRules(p, rules, rep, nil)
	sortFindings(rep.Findings)
	return rep
}

// runRules executes rules on p, appending to rep. When localOnly is
// non-nil, only rules with Local() == *localOnly run — the incremental
// path uses this to split scoped local checks from full global ones.
func runRules(p *Pass, rules []Rule, rep *Report, localOnly *bool) {
	for _, r := range rules {
		if !p.cfg.ruleEnabled(r.ID()) {
			continue
		}
		if localOnly != nil && r.Local() != *localOnly {
			continue
		}
		if r.NeedsDirection() && !p.nl.Directed() {
			rep.Skipped = append(rep.Skipped, SkippedRule{
				Rule:   r.ID(),
				Reason: "netlist is undirected",
			})
			continue
		}
		start := time.Now()
		fs := r.Check(p)
		stat := RuleStat{Rule: r.ID(), Findings: len(fs)}
		if len(fs) > p.cfg.MaxFindingsPerRule {
			stat.Truncated = len(fs) - p.cfg.MaxFindingsPerRule
			fs = fs[:p.cfg.MaxFindingsPerRule]
		}
		stat.Nanos = time.Since(start).Nanoseconds()
		rep.Findings = append(rep.Findings, fs...)
		rep.Rules = append(rep.Rules, stat)
	}
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := &fs[i], &fs[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		return a.Fingerprint < b.Fingerprint
	})
}
