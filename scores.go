package tanglefind

import "tanglefind/internal/metrics"

// GTLScore returns GTL-S(C) = T/|C|^p (paper §3.1).
func GTLScore(cut, size int, rent float64) float64 {
	return metrics.GTLScore(cut, size, rent)
}

// NGTLScore returns nGTL-S(C) = T/(A_G·|C|^p); an average-quality group
// scores ≈ 1 and strong GTLs score « 1.
func NGTLScore(cut, size int, rent, avgPins float64) float64 {
	return metrics.NGTLScore(cut, size, rent, avgPins)
}

// GTLSD returns the density-aware score T/(A_G·|C|^(p·A_C/A_G)) with
// A_C = pins/size.
func GTLSD(cut, size, pins int, rent, avgPins float64) float64 {
	return metrics.GTLSD(cut, size, pins, rent, avgPins)
}

// RentExponent estimates a group's Rent exponent via the paper's
// Phase II formula (ln T − ln A_C)/ln |C|.
func RentExponent(cut, size, pins int) (float64, bool) {
	return metrics.RentExponent(cut, size, pins)
}

// RatioCut returns the ratio-cut baseline T/|C|.
func RatioCut(cut, size int) float64 { return metrics.RatioCut(cut, size) }

// RentMetric returns Ng's baseline ln T / ln |C|.
func RentMetric(cut, size int) float64 { return metrics.RentMetric(cut, size) }
