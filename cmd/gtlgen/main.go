// Command gtlgen generates benchmark netlists — random graphs with
// planted GTLs, ISPD benchmark proxies and the industrial-circuit
// proxy — and writes them as .tfnet text or .tfb binary files
// (selected by the -out extension; .tfb loads ~an order of magnitude
// faster), optionally alongside Bookshelf files and a ground-truth
// sidecar.
//
// Usage:
//
//	gtlgen -kind random -cells 100000 -blocks 2000,15000 -out case2.tfnet
//	gtlgen -kind ispd -profile bigblue1 -scale 0.1 -out bb1.tfb
//	gtlgen -kind industrial -scale 0.1 -out ind.tfnet -bookshelf outdir
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"tanglefind/internal/bookshelf"
	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

// config carries the parsed flags; main builds it from the command
// line and the tests build it directly.
type config struct {
	kind    string
	cells   int
	blocks  string
	rent    float64
	profile string
	scale   float64
	seed    uint64
	out     string
	bkshelf string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.kind, "kind", "random", "workload kind: random, hier, ispd, industrial")
	flag.IntVar(&cfg.cells, "cells", 100_000, "cell count (random/hier)")
	flag.StringVar(&cfg.blocks, "blocks", "", "comma-separated planted block sizes (random)")
	flag.Float64Var(&cfg.rent, "rent", 0.65, "Rent exponent target (hier)")
	flag.StringVar(&cfg.profile, "profile", "bigblue1", "ISPD profile name (ispd)")
	flag.Float64Var(&cfg.scale, "scale", 1.0, "size scale factor (ispd/industrial)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "RNG seed")
	flag.StringVar(&cfg.out, "out", "", "output .tfnet path (required)")
	flag.StringVar(&cfg.bkshelf, "bookshelf", "", "also write Bookshelf files into this directory")
	flag.Parse()
	if cfg.out == "" {
		fmt.Fprintln(os.Stderr, "gtlgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gtlgen:", err)
		os.Exit(1)
	}
}

// run generates the requested workload and writes every artifact,
// reporting to w.
func run(cfg config, w io.Writer) error {
	var nl *netlist.Netlist
	var truth [][]netlist.CellID
	var err error
	switch cfg.kind {
	case "random":
		spec := generate.RandomGraphSpec{Cells: cfg.cells, Seed: cfg.seed}
		if cfg.blocks != "" {
			for _, tok := range strings.Split(cfg.blocks, ",") {
				size, perr := strconv.Atoi(strings.TrimSpace(tok))
				if perr != nil {
					return fmt.Errorf("bad block size %q", tok)
				}
				spec.Blocks = append(spec.Blocks, generate.BlockSpec{Size: size})
			}
		}
		var rg *generate.RandomGraph
		rg, err = generate.NewRandomGraph(spec)
		if err == nil {
			nl, truth = rg.Netlist, rg.Blocks
		}
	case "hier":
		nl, err = generate.NewHierarchical(generate.HierSpec{Cells: cfg.cells, Rent: cfg.rent, Seed: cfg.seed})
	case "ispd":
		p, ok := generate.ProfileByName(cfg.profile)
		if !ok {
			return fmt.Errorf("unknown ISPD profile %q", cfg.profile)
		}
		var d *generate.Design
		d, err = generate.NewISPDProxy(p, cfg.scale, cfg.seed)
		if err == nil {
			nl, truth = d.Netlist, d.Structures
		}
	case "industrial":
		var d *generate.Design
		d, err = generate.NewIndustrialProxy(cfg.scale, cfg.seed)
		if err == nil {
			nl, truth = d.Netlist, d.Structures
		}
	default:
		return fmt.Errorf("unknown kind %q", cfg.kind)
	}
	if err != nil {
		return err
	}

	// The extension picks the format: .tfb is the binary CSR form,
	// anything else the .tfnet text form.
	if err := nl.WriteFile(cfg.out); err != nil {
		return err
	}
	st := nl.Stats()
	fmt.Fprintf(w, "wrote %s: %d cells, %d nets, %d pins (A_G = %.2f)\n",
		cfg.out, st.Cells, st.Nets, st.Pins, st.AvgPins)

	if len(truth) > 0 {
		truthPath := strings.TrimSuffix(cfg.out, filepath.Ext(cfg.out)) + ".truth"
		tf, err := os.Create(truthPath)
		if err != nil {
			return err
		}
		for i, block := range truth {
			fmt.Fprintf(tf, "block %d", i)
			for _, c := range block {
				fmt.Fprintf(tf, " %d", c)
			}
			fmt.Fprintln(tf)
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s: %d ground-truth blocks\n", truthPath, len(truth))
	}

	if cfg.bkshelf != "" {
		if err := os.MkdirAll(cfg.bkshelf, 0o755); err != nil {
			return err
		}
		base := strings.TrimSuffix(filepath.Base(cfg.out), filepath.Ext(cfg.out))
		if err := bookshelf.Write(cfg.bkshelf, base, nl); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote Bookshelf files %s/%s.{aux,nodes,nets}\n", cfg.bkshelf, base)
	}
	return nil
}
