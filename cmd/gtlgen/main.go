// Command gtlgen generates benchmark netlists — random graphs with
// planted GTLs, ISPD benchmark proxies and the industrial-circuit
// proxy — and writes them as .tfnet (and optionally Bookshelf) files
// together with a ground-truth sidecar.
//
// Usage:
//
//	gtlgen -kind random -cells 100000 -blocks 2000,15000 -out case2.tfnet
//	gtlgen -kind ispd -profile bigblue1 -scale 0.1 -out bb1.tfnet
//	gtlgen -kind industrial -scale 0.1 -out ind.tfnet -bookshelf outdir
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"tanglefind/internal/bookshelf"
	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
)

func main() {
	var (
		kind    = flag.String("kind", "random", "workload kind: random, hier, ispd, industrial")
		cells   = flag.Int("cells", 100_000, "cell count (random/hier)")
		blocks  = flag.String("blocks", "", "comma-separated planted block sizes (random)")
		rent    = flag.Float64("rent", 0.65, "Rent exponent target (hier)")
		profile = flag.String("profile", "bigblue1", "ISPD profile name (ispd)")
		scale   = flag.Float64("scale", 1.0, "size scale factor (ispd/industrial)")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		out     = flag.String("out", "", "output .tfnet path (required)")
		bkshelf = flag.String("bookshelf", "", "also write Bookshelf files into this directory")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gtlgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var nl *netlist.Netlist
	var truth [][]netlist.CellID
	var err error
	switch *kind {
	case "random":
		spec := generate.RandomGraphSpec{Cells: *cells, Seed: *seed}
		if *blocks != "" {
			for _, tok := range strings.Split(*blocks, ",") {
				size, perr := strconv.Atoi(strings.TrimSpace(tok))
				if perr != nil {
					fatal(fmt.Errorf("bad block size %q", tok))
				}
				spec.Blocks = append(spec.Blocks, generate.BlockSpec{Size: size})
			}
		}
		var rg *generate.RandomGraph
		rg, err = generate.NewRandomGraph(spec)
		if err == nil {
			nl, truth = rg.Netlist, rg.Blocks
		}
	case "hier":
		nl, err = generate.NewHierarchical(generate.HierSpec{Cells: *cells, Rent: *rent, Seed: *seed})
	case "ispd":
		p, ok := generate.ProfileByName(*profile)
		if !ok {
			fatal(fmt.Errorf("unknown ISPD profile %q", *profile))
		}
		var d *generate.Design
		d, err = generate.NewISPDProxy(p, *scale, *seed)
		if err == nil {
			nl, truth = d.Netlist, d.Structures
		}
	case "industrial":
		var d *generate.Design
		d, err = generate.NewIndustrialProxy(*scale, *seed)
		if err == nil {
			nl, truth = d.Netlist, d.Structures
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := nl.Write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st := nl.Stats()
	fmt.Printf("wrote %s: %d cells, %d nets, %d pins (A_G = %.2f)\n",
		*out, st.Cells, st.Nets, st.Pins, st.AvgPins)

	if len(truth) > 0 {
		truthPath := strings.TrimSuffix(*out, filepath.Ext(*out)) + ".truth"
		tf, err := os.Create(truthPath)
		if err != nil {
			fatal(err)
		}
		for i, block := range truth {
			fmt.Fprintf(tf, "block %d", i)
			for _, c := range block {
				fmt.Fprintf(tf, " %d", c)
			}
			fmt.Fprintln(tf)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d ground-truth blocks\n", truthPath, len(truth))
	}

	if *bkshelf != "" {
		if err := os.MkdirAll(*bkshelf, 0o755); err != nil {
			fatal(err)
		}
		base := strings.TrimSuffix(filepath.Base(*out), filepath.Ext(*out))
		if err := bookshelf.Write(*bkshelf, base, nl); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Bookshelf files %s/%s.{aux,nodes,nets}\n", *bkshelf, base)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gtlgen:", err)
	os.Exit(1)
}
