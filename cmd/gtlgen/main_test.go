package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"tanglefind/internal/bookshelf"
	"tanglefind/internal/netlist"
)

func TestGenerateRandomWithTruth(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tiny.tfnet")
	var buf bytes.Buffer
	err := run(config{
		kind:   "random",
		cells:  400,
		blocks: "60, 40",
		seed:   3,
		out:    out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote "+out) {
		t.Errorf("report missing netlist line: %q", buf.String())
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nl, err := netlist.Read(f)
	if err != nil {
		t.Fatalf("generated netlist does not parse: %v", err)
	}
	if nl.NumCells() != 400 {
		t.Errorf("cells = %d, want 400", nl.NumCells())
	}

	// The ground-truth sidecar must list both planted blocks with valid
	// cell ids.
	tf, err := os.Open(filepath.Join(dir, "tiny.truth"))
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	var sizes []int
	sc := bufio.NewScanner(tf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || fields[0] != "block" {
			t.Fatalf("bad truth line: %q", sc.Text())
		}
		for _, tok := range fields[2:] {
			id, err := strconv.Atoi(tok)
			if err != nil || id < 0 || id >= nl.NumCells() {
				t.Fatalf("bad truth cell id %q", tok)
			}
		}
		sizes = append(sizes, len(fields)-2)
	}
	if len(sizes) != 2 || sizes[0] != 60 || sizes[1] != 40 {
		t.Errorf("truth block sizes = %v, want [60 40]", sizes)
	}
}

func TestGenerateBookshelfSidecar(t *testing.T) {
	dir := t.TempDir()
	bdir := filepath.Join(dir, "bk")
	err := run(config{
		kind:    "random",
		cells:   300,
		seed:    5,
		out:     filepath.Join(dir, "bk.tfnet"),
		bkshelf: bdir,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := bookshelf.ReadAux(filepath.Join(bdir, "bk.aux"))
	if err != nil {
		t.Fatalf("Bookshelf output does not parse: %v", err)
	}
	if d.Netlist.NumCells() != 300 {
		t.Errorf("Bookshelf cells = %d, want 300", d.Netlist.NumCells())
	}
}

func TestGenerateErrors(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.tfnet")
	if err := run(config{kind: "nope", out: out}, &bytes.Buffer{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run(config{kind: "random", cells: 100, blocks: "12,oops", out: out}, &bytes.Buffer{}); err == nil {
		t.Error("malformed block list accepted")
	}
	if err := run(config{kind: "ispd", profile: "nosuch", scale: 0.05, out: out}, &bytes.Buffer{}); err == nil {
		t.Error("unknown ISPD profile accepted")
	}
}

// TestGenerateBinaryOut: a .tfb extension must produce the binary
// format, with the same hypergraph a .tfnet run of the same spec
// produces.
func TestGenerateBinaryOut(t *testing.T) {
	dir := t.TempDir()
	textOut := filepath.Join(dir, "g.tfnet")
	binOut := filepath.Join(dir, "g.tfb")
	for _, out := range []string{textOut, binOut} {
		if err := run(config{kind: "random", cells: 300, seed: 5, out: out}, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(binOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("TFBN")) {
		t.Fatalf(".tfb output is not binary: %q", raw[:8])
	}
	text, err := netlist.ReadFile(textOut)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := netlist.ReadFile(binOut)
	if err != nil {
		t.Fatal(err)
	}
	if bin.NumCells() != text.NumCells() || bin.NumNets() != text.NumNets() || bin.NumPins() != text.NumPins() {
		t.Errorf("binary %d/%d/%d != text %d/%d/%d",
			bin.NumCells(), bin.NumNets(), bin.NumPins(),
			text.NumCells(), text.NumNets(), text.NumPins())
	}
}
