package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write lays out a file under dir, creating parents.
func write(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func vet(t *testing.T, root string, patterns ...string) []string {
	t.Helper()
	dirs, err := expand(root, patterns)
	if err != nil {
		t.Fatal(err)
	}
	var diags []string
	for _, d := range dirs {
		ds, err := checkDir(root, d)
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, ds...)
	}
	return diags
}

// TestViolationsFlagged builds a toy module with one legal and one
// illegal core import and checks only the illegal one is reported,
// with a file:line diagnostic.
func TestViolationsFlagged(t *testing.T) {
	root := t.TempDir()
	write(t, root, "go.mod", "module tanglefind\n\ngo 1.24\n")
	// The facade may import core.
	write(t, root, "facade.go", "package tanglefind\n\nimport _ \"tanglefind/internal/core\"\n")
	// Experiments may too.
	write(t, root, "internal/experiments/e.go", "package experiments\n\nimport _ \"tanglefind/internal/core\"\n")
	// A command may not — not even a core subpackage.
	write(t, root, "cmd/bad/main.go", "package main\n\nimport (\n\t_ \"tanglefind/internal/core\"\n\t_ \"tanglefind/internal/core/sub\"\n)\n")
	// Other internal imports stay unrestricted.
	write(t, root, "cmd/ok/main.go", "package main\n\nimport _ \"tanglefind/internal/netlist\"\n")
	// testdata is skipped entirely.
	write(t, root, "cmd/bad/testdata/x.go", "package x\n\nimport _ \"tanglefind/internal/core\"\n")

	diags := vet(t, root, "./...")
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.HasPrefix(d, "cmd/bad/main.go:") {
			t.Errorf("diagnostic outside cmd/bad: %s", d)
		}
		if !strings.Contains(d, "use the tanglefind facade") {
			t.Errorf("diagnostic lacks the fix hint: %s", d)
		}
	}
}

// TestNonRecursivePattern: ./dir checks one package, not its subtree.
func TestNonRecursivePattern(t *testing.T) {
	root := t.TempDir()
	write(t, root, "go.mod", "module tanglefind\n")
	write(t, root, "cmd/a/main.go", "package main\n\nimport _ \"tanglefind/internal/core\"\n")
	write(t, root, "cmd/a/sub/s.go", "package sub\n\nimport _ \"tanglefind/internal/core\"\n")

	if got := vet(t, root, "./cmd/a"); len(got) != 1 {
		t.Fatalf("./cmd/a: want 1 diagnostic, got %v", got)
	}
	if got := vet(t, root, "./cmd/a/..."); len(got) != 2 {
		t.Fatalf("./cmd/a/...: want 2 diagnostics, got %v", got)
	}
}

// TestRepositoryIsClean runs the real rule over the real repository:
// the layering invariant gtlvet exists to enforce must hold in-tree.
func TestRepositoryIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if diags := vet(t, root, "./..."); len(diags) != 0 {
		t.Fatalf("layering violations in the repository:\n%s", strings.Join(diags, "\n"))
	}
}
