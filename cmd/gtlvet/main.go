// Command gtlvet enforces this repository's layering rule: the
// algorithmic heart of the project, tanglefind/internal/core, may only
// be imported through the root facade (package tanglefind). Everything
// else — commands, examples, serving layers, the client — must consume
// the facade, so the facade stays an honest, complete public surface
// and core remains free to change shape.
//
// A small allowlist exists for packages whose job requires reaching
// under the facade: the facade itself (and its tests), the experiment
// tables (which sweep core options no public caller needs), and the
// delta differential harness.
//
// Usage:
//
//	gtlvet ./...            # vet every package under the module root
//	gtlvet ./cmd/... ./examples/...
//
// gtlvet is a vettool in spirit: it prints one file:line diagnostic
// per violation and exits 1 when any are found, 2 on usage or parse
// errors, 0 when the tree is clean. It is pure standard library
// (go/parser in ImportsOnly mode), so it runs in hermetic builds with
// no module cache.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// restricted is the import subtree gated behind the facade.
const restricted = "tanglefind/internal/core"

// allowed lists the module-relative package directories permitted to
// import the restricted subtree. Keep this list short and justified:
//
//	.                         — the facade is the one sanctioned door
//	internal/core             — the subtree may import itself
//	internal/experiments      — paper tables sweep non-public core knobs
//	internal/netlist/deltatest — differential harness compares core runs
var allowed = map[string]bool{
	".":                          true,
	"internal/core":              true,
	"internal/experiments":       true,
	"internal/netlist/deltatest": true,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gtlvet [packages]\npatterns: ./... or ./dir or ./dir/... (default ./...)")
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		fatal(err)
	}

	var diags []string
	for _, dir := range dirs {
		d, err := checkDir(root, dir)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, d...)
	}
	sort.Strings(diags)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// expand resolves package patterns to the set of directories that
// contain .go files. "./..." recurses; "./dir" is a single package.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "" || pat == "." {
			pat = "."
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("bad package pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("bad package pattern %q: not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// checkDir parses every .go file in dir (imports only) and returns one
// diagnostic per restricted import from a non-allowlisted package.
func checkDir(root, dir string) ([]string, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if allowed[rel] {
		return nil, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var diags []string
	fset := token.NewFileSet()
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ipath != restricted && !strings.HasPrefix(ipath, restricted+"/") {
				continue
			}
			pos := fset.Position(imp.Path.Pos())
			relFile, _ := filepath.Rel(root, pos.Filename)
			diags = append(diags, fmt.Sprintf("%s:%d: package %s imports %s; use the tanglefind facade (see gtlvet doc for the allowlist)",
				filepath.ToSlash(relFile), pos.Line, rel, ipath))
		}
	}
	return diags, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gtlvet:", err)
	os.Exit(2)
}
