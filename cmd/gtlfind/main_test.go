package main

import (
	"os"
	"path/filepath"
	"testing"

	"tanglefind/internal/cliutil"
	"tanglefind/internal/generate"
)

func TestLoadTfnet(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "x.tfnet")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.Netlist.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	nl, err := cliutil.LoadNetlist(p, "")
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 200 {
		t.Fatalf("cells = %d", nl.NumCells())
	}
	if _, err := cliutil.LoadNetlist(filepath.Join(dir, "missing.tfnet"), ""); err == nil {
		t.Error("expected error for missing file")
	}
}
