package main

import (
	"os"
	"path/filepath"
	"testing"

	"tanglefind/internal/cliutil"
	"tanglefind/internal/generate"
)

func TestLoadTfnet(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "x.tfnet")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.Netlist.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	nl, err := cliutil.LoadNetlist(p, "")
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumCells() != 200 {
		t.Fatalf("cells = %d", nl.NumCells())
	}
	if _, err := cliutil.LoadNetlist(filepath.Join(dir, "missing.tfnet"), ""); err == nil {
		t.Error("expected error for missing file")
	}
}

// TestApplyDeltaFile exercises the -delta path: a patch file is
// parsed, applied, and its effect reported; bad patches error.
func TestApplyDeltaFile(t *testing.T) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	patch := filepath.Join(dir, "eco.json")
	if err := os.WriteFile(patch, []byte(`{"set_nets":[{"net":0,"cells":[1,7]}],"add_cells":[{"name":"buf"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	patched, eff, err := applyDeltaFile(patch, rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if patched.NumCells() != 301 || eff.CellsAdded != 1 || len(eff.Dirty) == 0 {
		t.Fatalf("patched = %d cells, effect = %+v", patched.NumCells(), eff)
	}
	if err := patched.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"remove_cells":[9999]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := applyDeltaFile(bad, rg.Netlist); err == nil {
		t.Error("out-of-range patch accepted")
	}
	if _, _, err := applyDeltaFile(filepath.Join(dir, "missing.json"), rg.Netlist); err == nil {
		t.Error("missing patch file accepted")
	}
}
