// Command gtlfind runs the tangled-logic finder over a netlist file and
// prints the detected GTLs as a paper-style table.
//
// Usage:
//
//	gtlfind -in design.tfnet [-seeds 100] [-z 100000] [-metric gtlsd]
//	gtlfind -in design.tfb               # binary netlist (autodetected)
//	gtlfind -aux design.aux              # ISPD Bookshelf input
//	gtlfind -in design.tfnet -members    # also dump member cells
//	gtlfind -in design.tfb -relabel      # locality-permuted execution (same results)
//	gtlfind -in design.tfb -delta eco.json               # detect on the patched netlist
//	gtlfind -in design.tfb -delta eco.json -incremental  # reuse the base run's seed state
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"tanglefind"
	"tanglefind/internal/cliutil"
	"tanglefind/internal/report"
)

func main() {
	var (
		inPath   = flag.String("in", "", "input netlist in .tfnet or .tfb format (autodetected)")
		auxPath  = flag.String("aux", "", "input netlist as an ISPD Bookshelf .aux file")
		seeds    = flag.Int("seeds", 100, "number of random seeds m")
		z        = flag.Int("z", 100_000, "maximum linear ordering length Z")
		metric   = flag.String("metric", "gtlsd", "driving metric: gtlsd or ngtls")
		ordering = flag.String("ordering", "weighted", "phase-I growth rule: weighted, mincut or bfs")
		thresh   = flag.Float64("threshold", 0.8, "candidate acceptance threshold on the score")
		randSeed = flag.Uint64("seed", 1, "RNG seed (fixed seed = reproducible run)")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		members  = flag.Bool("members", false, "dump each GTL's member cell names")
		noRefine = flag.Bool("no-refine", false, "disable Phase III refinement")
		progress = flag.Bool("progress", false, "report seed progress on stderr while running")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = none), keeping partial results")
		levels   = flag.Int("levels", 1, "multilevel pipeline depth: coarsen levels-1 times, detect on the coarsest, project + refine down (1 = flat)")
		minCC    = flag.Int("min-coarse-cells", 0, "stop coarsening below this many cells (0 = default floor)")
		radius   = flag.Int("refine-radius", 2, "boundary-refinement sweeps per level after projection (0 = project only)")
		relabel  = flag.Bool("relabel", false, "run detection in a BFS locality-permuted shadow of the netlist (same GTL sets and scores, better cache behavior on large flat designs)")
		deltaP   = flag.String("delta", "", "JSON delta patch file (ECO edit) applied to the input netlist before detection")
		incr     = flag.Bool("incremental", false, "with -delta: run the base netlist first (recording seed state), then detect the patched netlist incrementally and report the reuse breakdown")
		dirtyRad = flag.Int("dirty-radius", 0, "with -incremental: BFS hops added around the delta's dirty cells before reuse checks (0 = exact read-set analysis)")
	)
	flag.Parse()
	if (*inPath == "") == (*auxPath == "") {
		fmt.Fprintln(os.Stderr, "gtlfind: provide exactly one of -in or -aux")
		flag.Usage()
		os.Exit(2)
	}
	nl, err := cliutil.LoadNetlist(*inPath, *auxPath)
	if err != nil {
		fatal(err)
	}
	if *incr && *deltaP == "" {
		fatal(errors.New("-incremental requires -delta"))
	}
	var patched *tanglefind.Netlist
	var effect *tanglefind.DeltaEffect
	if *deltaP != "" {
		if patched, effect, err = applyDeltaFile(*deltaP, nl); err != nil {
			fatal(err)
		}
		fmt.Printf("delta: +%d/-%d cells, +%d/-%d nets, %d touched nets, %d dirty cells\n",
			effect.CellsAdded, effect.CellsRemoved, effect.NetsAdded, effect.NetsRemoved,
			effect.TouchedNets, len(effect.Dirty))
	}
	opt := tanglefind.DefaultOptions()
	opt.Seeds = *seeds
	opt.MaxOrderLen = *z
	opt.AcceptThreshold = *thresh
	opt.RandSeed = *randSeed
	opt.Workers = *workers
	opt.Refine = !*noRefine
	opt.Relabel = *relabel
	opt.Levels = *levels
	opt.MinCoarseCells = *minCC
	opt.RefineRadius = *radius
	if opt.Metric, err = tanglefind.ParseMetric(*metric); err != nil {
		fatal(err)
	}
	if opt.Ordering, err = tanglefind.ParseOrdering(*ordering); err != nil {
		fatal(err)
	}
	opt.DirtyRadius = *dirtyRad
	// The netlist the reported detection runs over: the patched one
	// when a delta is given, the input otherwise.
	target := nl
	if patched != nil {
		target = patched
	}
	minCells := target.NumCells()
	if *incr && nl.NumCells() < minCells {
		// The base and patched runs must share one effective ordering
		// cap or the recorded state is unusable.
		minCells = nl.NumCells()
	}
	if opt.MaxOrderLen >= minCells {
		opt.MaxOrderLen = minCells / 2
		if opt.MaxOrderLen < 2 {
			fatal(fmt.Errorf("netlist too small (%d cells)", minCells))
		}
	}

	st := target.Stats()
	fmt.Printf("netlist: %d cells, %d nets, %d pins (A_G = %.2f)\n",
		st.Cells, st.Nets, st.Pins, st.AvgPins)

	// Ctrl-C / SIGTERM (and -timeout) cancel the engine, which still
	// reports the GTLs of the seeds that completed.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	ctx, cancel := cliutil.WithTimeout(ctx, *timeout)
	defer cancel()
	if *progress {
		opt.Progress = func(p tanglefind.Progress) {
			fmt.Fprintf(os.Stderr, "\rgtlfind: seeds %d/%d, candidates %d", p.SeedsDone, p.SeedsTotal, p.Candidates)
			if p.SeedsDone == p.SeedsTotal {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	var res *tanglefind.Result
	// reportNL is the netlist the reported result belongs to — the
	// patched target, except when an interrupted -incremental baseline
	// surfaces the base run's partial results instead.
	reportNL := target
	if *incr {
		// Baseline run over the pre-edit netlist records per-seed
		// state; the patched netlist is then detected incrementally —
		// the ECO loop a serving deployment runs per edit.
		baseOpt := opt
		baseOpt.RecordIncremental = true
		baseFinder, ferr := tanglefind.NewFinder(nl)
		if ferr != nil {
			fatal(ferr)
		}
		baseStart := time.Now()
		prev, ferr := baseFinder.Find(ctx, baseOpt)
		switch {
		case ferr != nil && (prev == nil || !errors.Is(ferr, ctx.Err())):
			fatal(ferr)
		case ferr != nil:
			// Interrupted during the baseline: surface its partial
			// results through the standard interrupted path below.
			res, err = prev, ferr
			reportNL = nl
		default:
			fmt.Printf("base run: %d GTLs in %s (state recorded)\n",
				len(prev.GTLs), time.Since(baseStart).Round(time.Millisecond))
			incrFinder, ferr := tanglefind.NewFinder(target)
			if ferr != nil {
				fatal(ferr)
			}
			res, err = incrFinder.FindIncremental(ctx, baseOpt, prev, effect.Dirty)
			if err == nil && res.Incremental != nil {
				ist := res.Incremental
				if ist.FullFallback {
					fmt.Printf("incremental: full fallback (%s)\n", ist.FallbackReason)
				} else {
					fmt.Printf("incremental: %d seeds replayed, %d rerun, %d/%d groups reused, %d cells reseeded\n",
						ist.ReusedSeeds, ist.RerunSeeds, ist.ReusedGroups, len(res.GTLs), ist.ReseededCells)
				}
			}
		}
	} else {
		finder, ferr := tanglefind.NewFinder(target)
		if ferr != nil {
			fatal(ferr)
		}
		res, err = finder.Find(ctx, opt)
	}
	interrupted := false
	if err != nil {
		if res == nil || !errors.Is(err, ctx.Err()) {
			fatal(err)
		}
		interrupted = true
		fmt.Fprintf(os.Stderr, "\ngtlfind: interrupted (%v); reporting partial results\n", err)
	}
	fmt.Printf("finder: %d seeds -> %d candidates -> %d disjoint GTLs in %s (Rent p ≈ %.3f)\n",
		len(res.Seeds), res.Candidates, len(res.GTLs), res.Elapsed.Round(time.Millisecond), res.Rent)
	if s := res.Sched; s != nil && s.Workers > 1 {
		fmt.Printf("  sched: %d workers, %d steals moved %d seeds\n",
			s.Workers, s.Steals, s.SeedsStolen)
	}
	for _, lv := range res.Levels {
		what := fmt.Sprintf("refined (+%d cells)", lv.RefineAdded)
		if lv.SeedsRun > 0 {
			what = fmt.Sprintf("detected (%d seeds, %d candidates)", lv.SeedsRun, lv.Candidates)
		}
		fmt.Printf("  level %d: %d cells, %d nets — %s in %.0fms\n",
			lv.Level, lv.Cells, lv.Nets, what, lv.ElapsedMS)
	}
	fmt.Println()

	tbl := report.New("Detected GTLs (best first)",
		"#", "Size", "Cut", "A_C", "nGTL-S", "GTL-SD", "Seed")
	for i, g := range res.GTLs {
		tbl.Row(i+1, g.Size(), g.Cut,
			float64(g.Pins)/float64(g.Size()), g.NGTLS, g.GTLSD, reportNL.CellName(g.Seed))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if *members {
		for i, g := range res.GTLs {
			fmt.Printf("\nGTL %d members:\n", i+1)
			for _, c := range g.Members {
				fmt.Printf("  %s\n", reportNL.CellName(c))
			}
		}
	}
	if interrupted {
		// The partial table above is still valid output, but scripts
		// must be able to tell a truncated run from a complete one.
		os.Exit(130)
	}
}

// applyDeltaFile loads a JSON delta patch from path and applies it to
// nl, returning the patched netlist and the edit's effect.
func applyDeltaFile(path string, nl *tanglefind.Netlist) (*tanglefind.Netlist, *tanglefind.DeltaEffect, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	d, err := tanglefind.ParseDelta(doc)
	if err != nil {
		return nil, nil, err
	}
	return d.Apply(nl)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gtlfind:", err)
	os.Exit(1)
}
