// Command gtlfind runs the tangled-logic finder over a netlist file and
// prints the detected GTLs as a paper-style table.
//
// Usage:
//
//	gtlfind -in design.tfnet [-seeds 100] [-z 100000] [-metric gtlsd]
//	gtlfind -in design.tfb               # binary netlist (autodetected)
//	gtlfind -aux design.aux              # ISPD Bookshelf input
//	gtlfind -in design.tfnet -members    # also dump member cells
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"tanglefind/internal/cliutil"
	"tanglefind/internal/core"
	"tanglefind/internal/report"
)

func main() {
	var (
		inPath   = flag.String("in", "", "input netlist in .tfnet or .tfb format (autodetected)")
		auxPath  = flag.String("aux", "", "input netlist as an ISPD Bookshelf .aux file")
		seeds    = flag.Int("seeds", 100, "number of random seeds m")
		z        = flag.Int("z", 100_000, "maximum linear ordering length Z")
		metric   = flag.String("metric", "gtlsd", "driving metric: gtlsd or ngtls")
		ordering = flag.String("ordering", "weighted", "phase-I growth rule: weighted, mincut or bfs")
		thresh   = flag.Float64("threshold", 0.8, "candidate acceptance threshold on the score")
		randSeed = flag.Uint64("seed", 1, "RNG seed (fixed seed = reproducible run)")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		members  = flag.Bool("members", false, "dump each GTL's member cell names")
		noRefine = flag.Bool("no-refine", false, "disable Phase III refinement")
		progress = flag.Bool("progress", false, "report seed progress on stderr while running")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = none), keeping partial results")
		levels   = flag.Int("levels", 1, "multilevel pipeline depth: coarsen levels-1 times, detect on the coarsest, project + refine down (1 = flat)")
		minCC    = flag.Int("min-coarse-cells", 0, "stop coarsening below this many cells (0 = default floor)")
		radius   = flag.Int("refine-radius", 2, "boundary-refinement sweeps per level after projection (0 = project only)")
	)
	flag.Parse()
	if (*inPath == "") == (*auxPath == "") {
		fmt.Fprintln(os.Stderr, "gtlfind: provide exactly one of -in or -aux")
		flag.Usage()
		os.Exit(2)
	}
	nl, err := cliutil.LoadNetlist(*inPath, *auxPath)
	if err != nil {
		fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seeds = *seeds
	opt.MaxOrderLen = *z
	opt.AcceptThreshold = *thresh
	opt.RandSeed = *randSeed
	opt.Workers = *workers
	opt.Refine = !*noRefine
	opt.Levels = *levels
	opt.MinCoarseCells = *minCC
	opt.RefineRadius = *radius
	if opt.Metric, err = core.ParseMetric(*metric); err != nil {
		fatal(err)
	}
	if opt.Ordering, err = core.ParseOrdering(*ordering); err != nil {
		fatal(err)
	}
	if opt.MaxOrderLen >= nl.NumCells() {
		opt.MaxOrderLen = nl.NumCells() / 2
		if opt.MaxOrderLen < 2 {
			fatal(fmt.Errorf("netlist too small (%d cells)", nl.NumCells()))
		}
	}

	st := nl.Stats()
	fmt.Printf("netlist: %d cells, %d nets, %d pins (A_G = %.2f)\n",
		st.Cells, st.Nets, st.Pins, st.AvgPins)

	// Ctrl-C / SIGTERM (and -timeout) cancel the engine, which still
	// reports the GTLs of the seeds that completed.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	ctx, cancel := cliutil.WithTimeout(ctx, *timeout)
	defer cancel()
	if *progress {
		opt.Progress = func(p core.Progress) {
			fmt.Fprintf(os.Stderr, "\rgtlfind: seeds %d/%d, candidates %d", p.SeedsDone, p.SeedsTotal, p.Candidates)
			if p.SeedsDone == p.SeedsTotal {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	finder, err := core.NewFinder(nl)
	if err != nil {
		fatal(err)
	}
	res, err := finder.Find(ctx, opt)
	interrupted := false
	if err != nil {
		if res == nil || !errors.Is(err, ctx.Err()) {
			fatal(err)
		}
		interrupted = true
		fmt.Fprintf(os.Stderr, "\ngtlfind: interrupted (%v); reporting partial results\n", err)
	}
	fmt.Printf("finder: %d seeds -> %d candidates -> %d disjoint GTLs in %s (Rent p ≈ %.3f)\n",
		len(res.Seeds), res.Candidates, len(res.GTLs), res.Elapsed.Round(time.Millisecond), res.Rent)
	for _, lv := range res.Levels {
		what := fmt.Sprintf("refined (+%d cells)", lv.RefineAdded)
		if lv.SeedsRun > 0 {
			what = fmt.Sprintf("detected (%d seeds, %d candidates)", lv.SeedsRun, lv.Candidates)
		}
		fmt.Printf("  level %d: %d cells, %d nets — %s in %.0fms\n",
			lv.Level, lv.Cells, lv.Nets, what, lv.ElapsedMS)
	}
	fmt.Println()

	tbl := report.New("Detected GTLs (best first)",
		"#", "Size", "Cut", "A_C", "nGTL-S", "GTL-SD", "Seed")
	for i, g := range res.GTLs {
		tbl.Row(i+1, g.Size(), g.Cut,
			float64(g.Pins)/float64(g.Size()), g.NGTLS, g.GTLSD, nl.CellName(g.Seed))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if *members {
		for i, g := range res.GTLs {
			fmt.Printf("\nGTL %d members:\n", i+1)
			for _, c := range g.Members {
				fmt.Printf("  %s\n", nl.CellName(c))
			}
		}
	}
	if interrupted {
		// The partial table above is still valid output, but scripts
		// must be able to tell a truncated run from a complete one.
		os.Exit(130)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gtlfind:", err)
	os.Exit(1)
}
