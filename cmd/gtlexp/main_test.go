package main

import "testing"

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in      string
		scale   float64
		wantErr bool
	}{
		{"small", 0.08, false},
		{"medium", 0.25, false},
		{"full", 1.0, false},
		{"0.5", 0.5, false},
		{"0", 0, true},
		{"-1", 0, true},
		{"2", 0, true},
		{"bogus", 0, true},
	} {
		cfg, err := parseScale(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseScale(%q): expected error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseScale(%q): %v", tc.in, err)
			continue
		}
		if cfg.Scale != tc.scale {
			t.Errorf("parseScale(%q).Scale = %v, want %v", tc.in, cfg.Scale, tc.scale)
		}
		if cfg.Seeds <= 0 {
			t.Errorf("parseScale(%q).Seeds = %d", tc.in, cfg.Seeds)
		}
	}
}
