package main

import (
	"os"
	"path/filepath"
	"testing"

	"tanglefind/internal/experiments"
	"tanglefind/internal/netlist"
)

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in      string
		scale   float64
		wantErr bool
	}{
		{"small", 0.08, false},
		{"medium", 0.25, false},
		{"full", 1.0, false},
		{"0.5", 0.5, false},
		{"0", 0, true},
		{"-1", 0, true},
		{"2", 0, true},
		{"bogus", 0, true},
	} {
		cfg, err := parseScale(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseScale(%q): expected error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseScale(%q): %v", tc.in, err)
			continue
		}
		if cfg.Scale != tc.scale {
			t.Errorf("parseScale(%q).Scale = %v, want %v", tc.in, cfg.Scale, tc.scale)
		}
		if cfg.Seeds <= 0 {
			t.Errorf("parseScale(%q).Seeds = %d", tc.in, cfg.Seeds)
		}
	}
}

func TestDumpWorkloads(t *testing.T) {
	dir := t.TempDir()
	cfg := experiments.Config{Scale: 0.01, Seeds: 4, Seed: 1}
	// Only table1 selected: table2/table3 workloads must not appear.
	only := func(name string) bool { return name == "table1" }
	if err := dumpWorkloads(dir, cfg, only); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(experiments.Table1Cases) {
		t.Fatalf("dumped %d files, want %d", len(entries), len(experiments.Table1Cases))
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".tfb" {
			t.Errorf("unexpected dump file %s", e.Name())
		}
		nl, err := netlist.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
	}
}
