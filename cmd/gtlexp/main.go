// Command gtlexp regenerates the paper's evaluation: Tables 1-3 and
// Figures 2, 3, 5 plus the Figure 4/6 placement overlays and the
// Figure 1/7 cell-inflation congestion experiment.
//
// Usage:
//
//	gtlexp                      # everything at the small scale
//	gtlexp -scale full          # the paper's exact sizes (slow)
//	gtlexp -exp table1,fig5     # selected experiments only
//	gtlexp -outdir results      # also write PPM/PGM figure images
//	gtlexp -dump workloads      # save table workloads as .tfb binaries
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tanglefind"
	"tanglefind/internal/cliutil"
	"tanglefind/internal/experiments"
	"tanglefind/internal/generate"
)

func main() {
	var (
		scale   = flag.String("scale", "small", "workload scale: small, medium, full, or a numeric factor like 0.25")
		exps    = flag.String("exp", "all", "comma-separated experiments: table1,table2,table3,fig2,fig3,fig4,fig5,fig6,inflation,ablation,multilevel,incremental,parallel,hotpath,lint")
		seeds   = flag.Int("seeds", 0, "override finder seed count (0 = preset)")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		workers = flag.String("workers", "", "engine workers: a count applied to every experiment, or a comma list / \"sweep\" (1,2,4,NumCPU) selecting the parallel experiment's sweep rows")
		outdir  = flag.String("outdir", "", "directory for figure image files (optional)")
		dump    = flag.String("dump", "", "directory to save the table workload netlists as .tfb binaries (optional)")
	)
	flag.Parse()

	cfg, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}
	cfg.Seed = *seed
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	sweep, err := parseWorkers(*workers, &cfg)
	if err != nil {
		fatal(err)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string) bool { return all || want[name] }
	// Ctrl-C / SIGTERM cancels the engine mid-run instead of killing the
	// process between experiments.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	start := time.Now()
	fmt.Printf("gtlexp: scale=%.3g seeds=%d seed=%d\n\n", cfg.Scale, cfg.Seeds, cfg.Seed)

	if *dump != "" {
		if err := dumpWorkloads(*dump, cfg, run); err != nil {
			fatal(err)
		}
	}

	if run("table1") {
		if _, err := experiments.Table1(ctx, cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if run("table2") {
		if _, err := experiments.Table2(ctx, cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if run("table3") {
		if _, err := experiments.Table3(ctx, cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if run("fig2") {
		if _, err := experiments.Figure23(ctx, tanglefind.MetricNGTLS, cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if run("fig3") {
		if _, err := experiments.Figure23(ctx, tanglefind.MetricGTLSD, cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if run("fig5") {
		if _, err := experiments.Figure5(ctx, cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if run("fig4") {
		if err := runOverlay(ctx, "bigblue1", cfg, *outdir); err != nil {
			fatal(err)
		}
	}
	if run("fig6") {
		if err := runOverlay(ctx, "industrial", cfg, *outdir); err != nil {
			fatal(err)
		}
	}
	if run("inflation") {
		if _, err := experiments.Inflation(ctx, cfg, os.Stdout, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if run("ablation") {
		if _, err := experiments.Ablation(ctx, cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if run("multilevel") {
		results, err := experiments.Multilevel(ctx, cfg, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if *dump != "" {
			// The speed/quality record rides along with -dump so perf
			// trajectories can be compared across commits.
			path := filepath.Join(*dump, "BENCH_multilevel.json")
			if err := experiments.WriteMultilevelRecord(path, cfg, results); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if run("incremental") {
		results, err := experiments.Incremental(ctx, cfg, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if *dump != "" {
			path := filepath.Join(*dump, "BENCH_incremental.json")
			if err := experiments.WriteIncrementalRecord(path, cfg, results); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if run("parallel") {
		rec, err := experiments.Parallel(ctx, cfg, sweep, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if *dump != "" {
			path := filepath.Join(*dump, "BENCH_parallel.json")
			if err := experiments.WriteParallelRecord(path, rec); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if run("hotpath") {
		rec, err := experiments.HotPath(ctx, cfg, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if *dump != "" {
			path := filepath.Join(*dump, "BENCH_hotpath.json")
			if err := experiments.WriteHotPathRecord(path, rec); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if run("lint") {
		if _, err := experiments.Lint(ctx, cfg, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
}

func runOverlay(ctx context.Context, design string, cfg experiments.Config, outdir string) error {
	var ppm *os.File
	var err error
	if outdir != "" {
		if err = os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
		ppm, err = os.Create(filepath.Join(outdir, design+"_placement.ppm"))
		if err != nil {
			return err
		}
		defer ppm.Close()
	}
	if ppm != nil {
		_, err = experiments.Figure46(ctx, design, cfg, os.Stdout, ppm)
	} else {
		_, err = experiments.Figure46(ctx, design, cfg, os.Stdout, nil)
	}
	if err == nil && ppm != nil {
		fmt.Printf("wrote %s\n\n", ppm.Name())
	}
	return err
}

// dumpWorkloads regenerates the table workloads for the selected
// experiments and saves them as .tfb binary netlists, so a finding or
// visualization run (gtlfind/gtlviz autodetect the format) can replay
// the exact experiment inputs without regenerating them.
func dumpWorkloads(dir string, cfg experiments.Config, run func(string) bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, nl *tanglefind.Netlist) error {
		path := filepath.Join(dir, name+".tfb")
		if err := nl.WriteFile(path); err != nil {
			return err
		}
		st := nl.Stats()
		fmt.Printf("dumped %s: %d cells, %d nets, %d pins\n", path, st.Cells, st.Nets, st.Pins)
		return nil
	}
	if run("table1") {
		for _, cs := range experiments.Table1Cases {
			rg, _, err := experiments.Table1Workload(cs, cfg)
			if err != nil {
				return err
			}
			if err := save("table1_"+cs.Name, rg.Netlist); err != nil {
				return err
			}
		}
	}
	if run("table2") {
		for _, p := range generate.ISPDProfiles {
			d, err := generate.NewISPDProxy(p, cfg.Scale, cfg.Seed*100+7)
			if err != nil {
				return err
			}
			if err := save("table2_"+p.Name, d.Netlist); err != nil {
				return err
			}
		}
	}
	if run("table3") {
		d, err := generate.NewIndustrialProxy(cfg.Scale, cfg.Seed*10+3)
		if err != nil {
			return err
		}
		if err := save("table3_industrial", d.Netlist); err != nil {
			return err
		}
	}
	fmt.Println()
	return nil
}

// parseWorkers interprets the -workers flag: empty keeps the engine
// default and the standard sweep; a single count pins every
// experiment (including the parallel sweep's only row) to it; a comma
// list or "sweep" selects the parallel experiment's sweep rows while
// leaving the other experiments on the engine default.
func parseWorkers(s string, cfg *experiments.Config) ([]int, error) {
	switch s {
	case "":
		return nil, nil
	case "sweep":
		return experiments.DefaultWorkerSweep(), nil
	}
	var sweep []int
	for _, part := range strings.Split(s, ",") {
		var w int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &w); err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers %q (want a count, a comma list like 1,2,4, or \"sweep\")", s)
		}
		sweep = append(sweep, w)
	}
	if len(sweep) == 1 {
		cfg.Workers = sweep[0]
	}
	return sweep, nil
}

func parseScale(s string) (experiments.Config, error) {
	switch s {
	case "small":
		return experiments.ScaleSmall, nil
	case "medium":
		return experiments.ScaleMedium, nil
	case "full":
		return experiments.ScaleFull, nil
	}
	var f float64
	if _, err := fmt.Sscanf(s, "%g", &f); err != nil || f <= 0 || f > 1 {
		return experiments.Config{}, fmt.Errorf("bad scale %q (want small/medium/full or a factor in (0,1])", s)
	}
	cfg := experiments.ScaleSmall
	cfg.Scale = f
	return cfg, nil
}

func fatal(err error) {
	cliutil.Fatal("gtlexp", err)
}
