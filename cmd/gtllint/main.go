// Command gtllint runs the structural lint rules over a netlist file
// and prints the findings.
//
// Usage:
//
//	gtllint -in design.tfb                       # text report
//	gtllint -in design.tfnet -json               # full report as JSON
//	gtllint -in design.tfb -fingerprints         # one fingerprint per line (for diffing)
//	gtllint -in design.tfb -fail-on warning      # exit 1 on warnings or errors
//	gtllint -in design.tfb -enable comb-loop     # run a subset of rules
//	gtllint -in design.tfb -delta eco.json       # lint the patched netlist incrementally
//	gtllint -rules                               # print the rule catalog
//
// Exit status: 0 when no finding reaches the -fail-on severity
// (default error), 1 when one does, 2 on usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tanglefind"
	"tanglefind/internal/cliutil"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input netlist in .tfnet or .tfb format (autodetected)")
		auxPath   = flag.String("aux", "", "input netlist as an ISPD Bookshelf .aux file")
		jsonOut   = flag.Bool("json", false, "emit the full report as JSON")
		fpOut     = flag.Bool("fingerprints", false, "emit one finding fingerprint per line (stable across runs; for suppression files and CI diffs)")
		failOn    = flag.String("fail-on", "error", "lowest severity that fails the run: info, warning or error")
		enable    = flag.String("enable", "", "comma-separated rule ids to run (empty = all)")
		disable   = flag.String("disable", "", "comma-separated rule ids to skip")
		maxFanout = flag.Int("max-fanout", 0, "high-fanout-net threshold in pins (0 = default 64)")
		minChain  = flag.Int("min-chain", 0, "shortest buffer chain reported (0 = default 3)")
		listRules = flag.Bool("rules", false, "print the rule catalog and exit")
		deltaP    = flag.String("delta", "", "JSON delta patch file (ECO edit): lint the patched netlist incrementally against the base report")
	)
	flag.Parse()

	if *listRules {
		printCatalog()
		return
	}
	if (*inPath == "") == (*auxPath == "") {
		fmt.Fprintln(os.Stderr, "gtllint: provide exactly one of -in or -aux")
		flag.Usage()
		os.Exit(2)
	}
	failSev, err := tanglefind.ParseLintSeverity(*failOn)
	if err != nil {
		fatal(err)
	}
	cfg := tanglefind.LintConfig{
		Enable:    splitList(*enable),
		Disable:   splitList(*disable),
		MaxFanout: *maxFanout,
		MinChain:  *minChain,
	}
	for _, id := range append(splitList(*enable), splitList(*disable)...) {
		if !knownRule(id) {
			fatal(fmt.Errorf("unknown rule %q (see gtllint -rules)", id))
		}
	}

	nl, err := cliutil.LoadNetlist(*inPath, *auxPath)
	if err != nil {
		fatal(err)
	}

	var rep *tanglefind.LintReport
	if *deltaP == "" {
		rep = tanglefind.Lint(nl, cfg)
	} else {
		doc, err := os.ReadFile(*deltaP)
		if err != nil {
			fatal(err)
		}
		d, err := tanglefind.ParseDelta(doc)
		if err != nil {
			fatal(err)
		}
		child, eff, err := d.Apply(nl)
		if err != nil {
			fatal(err)
		}
		base := tanglefind.Lint(nl, cfg)
		rep = tanglefind.LintDelta(base, nl, child, eff.Dirty, cfg)
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	case *fpOut:
		fps := make([]string, 0, len(rep.Findings))
		for _, f := range rep.Findings {
			fps = append(fps, f.Fingerprint+" "+f.Rule)
		}
		sort.Strings(fps)
		for _, fp := range fps {
			fmt.Println(fp)
		}
	default:
		printText(rep)
	}

	if max, ok := rep.MaxSeverity(); ok && max >= failSev {
		os.Exit(1)
	}
}

func printText(rep *tanglefind.LintReport) {
	for _, f := range rep.Findings {
		fmt.Printf("%-7s %-16s %s  %s\n", f.Severity, f.Rule, f.Fingerprint, f.Msg)
	}
	n := rep.CountBySeverity()
	fmt.Printf("%d error(s), %d warning(s), %d info finding(s)",
		n[tanglefind.LintError], n[tanglefind.LintWarning], n[tanglefind.LintInfo])
	if rep.Incremental {
		fmt.Printf(" [incremental: %d cells rechecked]", rep.RecheckedCells)
	}
	fmt.Println()
	for _, s := range rep.Skipped {
		fmt.Printf("skipped %s: %s\n", s.Rule, s.Reason)
	}
}

func printCatalog() {
	fmt.Println("rule catalog (id  severity  needs-direction  description):")
	for _, r := range tanglefind.LintRules() {
		dir := "-"
		if r.NeedsDirection() {
			dir = "directed"
		}
		fmt.Printf("  %-17s %-8s %-9s %s\n", r.ID(), r.Severity(), dir, r.Doc())
	}
}

func knownRule(id string) bool {
	for _, r := range tanglefind.LintRules() {
		if r.ID() == id {
			return true
		}
	}
	return false
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// fatal exits 2: usage/input failures must stay distinguishable from
// exit 1, which means "lint findings at or above -fail-on".
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gtllint: %v\n", err)
	os.Exit(2)
}
