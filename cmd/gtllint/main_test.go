package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"tanglefind"
)

var update = flag.Bool("update", false, "regenerate the committed testdata fixture")

// buildDirtyFixture is the source of truth for testdata/dirty.tfb: a
// directed netlist planting one instance of every builtin rule's
// defect. The committed .tfb and fingerprint golden are regenerated
// with `go test ./cmd/gtllint -update`.
func buildDirtyFixture() *tanglefind.Netlist {
	var b tanglefind.Builder
	pi := b.AddCell("pi_a")
	po := b.AddCell("po_x")

	// multi-driven-net: two gates fighting over n_contend.
	m1 := b.AddCell("u_md1")
	m2 := b.AddCell("u_md2")
	b.AddDrivenNet("n_md_in", []tanglefind.CellID{pi}, m1, m2)
	b.AddDrivenNet("n_contend", []tanglefind.CellID{m1, m2}, po)

	// undriven-net: all pins of n_undriven are sinks.
	u := b.AddCell("u_und")
	b.AddDrivenNet("n_und_in", []tanglefind.CellID{pi}, u)
	b.AddNet("n_undriven", u, po)

	// floating-net: a driven wire with nobody on the other end.
	b.AddDrivenNet("n_dangle_wire", []tanglefind.CellID{m1})

	// dangling-cell: u_dead's only fanout is a sink-less net.
	dead := b.AddCell("u_dead")
	b.AddDrivenNet("n_dead_in", []tanglefind.CellID{pi}, dead)
	b.AddDrivenNet("n_dead_out", []tanglefind.CellID{dead})

	// comb-loop: u_lp1 ⇄ u_lp2 with no sequential break.
	l1 := b.AddCell("u_lp1")
	l2 := b.AddCell("u_lp2")
	b.AddDrivenNet("n_lp_in", []tanglefind.CellID{pi}, l1)
	b.AddDrivenNet("n_lp_fwd", []tanglefind.CellID{l1}, l2, po)
	b.AddDrivenNet("n_lp_back", []tanglefind.CellID{l2}, l1)

	// const-tied: a tie cell as the sole driver of n_const.
	tie := b.AddCell("tie_hi")
	ct := b.AddCell("u_ct")
	b.AddDrivenNet("n_const", []tanglefind.CellID{tie}, ct)
	b.AddDrivenNet("n_ct_out", []tanglefind.CellID{ct}, po)

	// buffer-chain: three repeaters in a row.
	prev := pi
	for _, name := range []string{"u_rep1", "u_rep2", "u_rep3"} {
		buf := b.AddCell(name)
		b.AddDrivenNet("n_"+name, []tanglefind.CellID{prev}, buf)
		prev = buf
	}
	b.AddDrivenNet("n_rep_out", []tanglefind.CellID{prev}, po)

	// size-only: structural-by-name cell.
	so := b.AddCell("u_size_only_cap")
	b.AddDrivenNet("n_so_in", []tanglefind.CellID{pi}, so)

	// high-fanout-net: 1 driver + 63 sinks reaches the 64-pin default.
	hf := b.AddCell("u_hf_drv")
	b.AddDrivenNet("n_hf_in", []tanglefind.CellID{pi}, hf)
	sinks := make([]tanglefind.CellID, 63)
	for i := range sinks {
		sinks[i] = b.AddCell("po_hf" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
	}
	b.AddDrivenNet("n_hf_big", []tanglefind.CellID{hf}, sinks...)

	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}

func fixtureFingerprints(rep *tanglefind.LintReport) []string {
	fps := make([]string, 0, len(rep.Findings))
	for _, f := range rep.Findings {
		fps = append(fps, f.Fingerprint+" "+f.Rule)
	}
	sort.Strings(fps)
	return fps
}

// TestDirtyFixture pins the committed known-dirty fixture: the .tfb on
// disk must match the in-code construction, every rule must fire on
// it, and the fingerprints must equal the committed golden exactly.
// CI additionally diffs `gtllint -fingerprints` output against the
// same golden.
func TestDirtyFixture(t *testing.T) {
	nl := buildDirtyFixture()
	rep := tanglefind.Lint(nl, tanglefind.LintConfig{})
	fps := fixtureFingerprints(rep)

	tfbPath := filepath.Join("testdata", "dirty.tfb")
	goldPath := filepath.Join("testdata", "dirty.fingerprints")
	if *update {
		var buf bytes.Buffer
		if err := nl.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tfbPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldPath, []byte(strings.Join(fps, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	fired := map[string]bool{}
	for _, f := range rep.Findings {
		fired[f.Rule] = true
	}
	for _, r := range tanglefind.LintRules() {
		if !fired[r.ID()] {
			t.Errorf("rule %s does not fire on the dirty fixture", r.ID())
		}
	}

	disk, err := tanglefind.ReadNetlistFile(tfbPath)
	if err != nil {
		t.Fatalf("committed fixture unreadable (regenerate with -update): %v", err)
	}
	diskRep := tanglefind.Lint(disk, tanglefind.LintConfig{})
	gold, err := os.ReadFile(goldPath)
	if err != nil {
		t.Fatalf("committed golden unreadable (regenerate with -update): %v", err)
	}
	want := strings.Split(strings.TrimSpace(string(gold)), "\n")
	if got := fixtureFingerprints(diskRep); !reflect.DeepEqual(got, want) {
		t.Errorf("fixture fingerprints drifted from the committed golden\ngot:  %v\nwant: %v", got, want)
	}
	if !reflect.DeepEqual(fps, want) {
		t.Errorf("in-code fixture disagrees with the committed golden (regenerate with -update)\ngot:  %v\nwant: %v", fps, want)
	}
}
