package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestRunServesAndDrains boots the real binary path on an ephemeral
// port, probes the health endpoint, then cancels the context and
// expects a clean graceful exit.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	cfg := config{
		addr:         "127.0.0.1:0",
		workers:      1,
		queueDepth:   4,
		cachePins:    1_000_000,
		cacheResults: 8,
		grace:        5 * time.Second,
		ready:        func(a string) { addrCh <- a },
	}
	var out bytes.Buffer
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, cfg, &out) }()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-errc:
		t.Fatalf("server exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/v1/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
	// Stats answers too — the full stack is wired.
	resp, err = http.Get(fmt.Sprintf("http://%s/v1/stats", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats status = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
	if !bytes.Contains(out.Bytes(), []byte("listening on")) || !bytes.Contains(out.Bytes(), []byte("bye")) {
		t.Errorf("unexpected log output:\n%s", out.String())
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := run(ctx, config{addr: "127.0.0.1:-1"}, io.Discard)
	if err == nil {
		t.Fatal("bad listen address accepted")
	}
}
