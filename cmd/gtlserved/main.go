// Command gtlserved runs the tangled-logic detection service: a
// long-running HTTP server with a content-addressed netlist registry,
// a bounded job queue over a worker pool, streamed progress and a
// result cache. See the README's "Running as a service" section for
// the API walkthrough.
//
// Usage:
//
//	gtlserved -addr :8080 -workers 2 -queue 64 \
//	          -cache-pins 64000000 -cache-results 128 \
//	          -data-dir /var/lib/gtlserved
//
// With -data-dir set the registry is durable: uploads, deltas and
// finished results are journaled to disk and recovered on restart
// (see the README's "Durability" section). Without it the service
// serves fully in-memory, exactly as before.
//
// Observability: structured logs (request and job lifecycle records,
// correlated by X-Request-ID) go to stderr; GET /metrics serves the
// Prometheus exposition; -pprof-addr starts net/http/pprof on a
// separate listener so profiling stays off the public API port.
//
// Ctrl-C / SIGTERM triggers a graceful shutdown: in-flight HTTP
// requests and running jobs drain within -grace, then anything left
// is cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"tanglefind/internal/cliutil"
	"tanglefind/internal/jobs"
	"tanglefind/internal/server"
	"tanglefind/internal/store"
)

// config carries the parsed flags; main builds it from the command
// line and the tests build it directly.
type config struct {
	addr          string
	workers       int
	engineWorkers int
	queueDepth    int
	cachePins     int64
	cacheResults  int
	incrStates    int
	grace         time.Duration
	pprofAddr     string
	dataDir       string

	// ready, when set, receives the bound address once the listener is
	// up (tests bind :0 and need the real port).
	ready func(addr string)
	// logw overrides the structured-log destination (default stderr);
	// tests capture it.
	logw io.Writer
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.workers, "workers", 2, "concurrent jobs (each internally parallel)")
	flag.IntVar(&cfg.engineWorkers, "engine-workers", 0, "pool-wide budget of engine goroutines shared by running jobs; each job is granted min(its workers option, what's free), never below 1 (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.queueDepth, "queue", 64, "job queue depth; beyond it submissions get 429")
	flag.Int64Var(&cfg.cachePins, "cache-pins", 64_000_000, "netlist registry pin budget before LRU eviction (0 = unlimited)")
	flag.IntVar(&cfg.cacheResults, "cache-results", 128, "result cache entries")
	flag.IntVar(&cfg.incrStates, "incr-states", 8, "retained incremental seed states for find_incremental jobs (each O(seeds x ordering length) bytes)")
	flag.DurationVar(&cfg.grace, "grace", 30*time.Second, "shutdown drain deadline")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "optional net/http/pprof listen address (e.g. 127.0.0.1:6060); empty disables profiling")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "persist the registry and finished results under this directory and recover them on restart; empty serves in-memory only")
	flag.Parse()

	ctx, stop := cliutil.SignalContext()
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		cliutil.Fatal("gtlserved", err)
	}
}

// run serves until ctx is cancelled, then drains.
func run(ctx context.Context, cfg config, w io.Writer) error {
	logw := cfg.logw
	if logw == nil {
		logw = os.Stderr
	}
	logger := slog.New(slog.NewTextHandler(logw, nil))
	logger.Info("starting",
		"addr", cfg.addr, "workers", cfg.workers,
		"engine_workers", cfg.engineWorkers, "queue", cfg.queueDepth,
		"cache_pins", cfg.cachePins, "cache_results", cfg.cacheResults,
		"incr_states", cfg.incrStates, "grace", cfg.grace.String(),
		"pprof_addr", cfg.pprofAddr, "data_dir", cfg.dataDir)

	var st *store.Store
	if cfg.dataDir != "" {
		backend, err := store.OpenDisk(cfg.dataDir)
		if err != nil {
			return err
		}
		st, err = store.Open(cfg.cachePins, backend)
		if err != nil {
			backend.Close()
			return fmt.Errorf("recover data dir %s: %w", cfg.dataDir, err)
		}
		defer st.Close()
		sst := st.Stats()
		logger.Info("recovered data dir",
			"data_dir", cfg.dataDir,
			"netlists", sst.RecoveredNetlists,
			"results", sst.RecoveredResults,
			"journal_truncated_bytes", sst.JournalTruncatedBytes)
	} else {
		st = store.New(cfg.cachePins)
	}
	mgr := jobs.New(jobs.Config{
		Store:         st,
		Workers:       cfg.workers,
		EngineWorkers: cfg.engineWorkers,
		QueueDepth:    cfg.queueDepth,
		CacheResults:  cfg.cacheResults,
		IncrStates:    cfg.incrStates,
		Logger:        logger,
	})
	srv := server.New(st, mgr, server.WithLogger(logger))

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "gtlserved: listening on %s (workers=%d queue=%d pin-budget=%d)\n",
		ln.Addr(), cfg.workers, cfg.queueDepth, cfg.cachePins)
	if cfg.ready != nil {
		cfg.ready(ln.Addr().String())
	}

	var pprofSrv *http.Server
	if cfg.pprofAddr != "" {
		// An explicit mux, not DefaultServeMux: only the profiling
		// endpoints, and only on this (ideally loopback) listener.
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Handler: pmux}
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go pprofSrv.Serve(pln)
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting traffic, then let running jobs
	// finish; past the grace deadline everything left is cancelled.
	fmt.Fprintf(w, "gtlserved: shutting down (grace %s)\n", cfg.grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	if pprofSrv != nil {
		pprofSrv.Close()
	}
	httpErr := hs.Shutdown(drainCtx)
	jobErr := mgr.Shutdown(drainCtx)
	<-errc // Serve has returned http.ErrServerClosed
	if httpErr != nil && !errors.Is(httpErr, context.DeadlineExceeded) {
		return httpErr
	}
	if jobErr != nil {
		fmt.Fprintf(w, "gtlserved: drain deadline hit, remaining jobs cancelled\n")
	}
	fmt.Fprintln(w, "gtlserved: bye")
	return nil
}
