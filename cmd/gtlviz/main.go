// Command gtlviz places a netlist, optionally runs the finder, and
// renders the placement (with GTL overlay) and the RUDY congestion map
// as ASCII art and PPM/PGM images.
//
// Usage:
//
//	gtlviz -in design.tfnet -out dir          # placement + congestion
//	gtlviz -in design.tfnet -find -out dir    # color detected GTLs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tanglefind/internal/core"
	"tanglefind/internal/netlist"
	"tanglefind/internal/place"
	"tanglefind/internal/route"
	"tanglefind/internal/viz"
)

func main() {
	var (
		inPath = flag.String("in", "", "input netlist (.tfnet)")
		outDir = flag.String("out", "", "output directory for images (optional; ASCII always prints)")
		find   = flag.Bool("find", false, "run the finder and overlay detected GTLs")
		seeds  = flag.Int("seeds", 100, "finder seeds when -find is set")
		grid   = flag.Int("grid", 64, "congestion grid resolution")
		ascii  = flag.Int("ascii", 48, "ASCII render size")
		seed   = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()
	if *inPath == "" {
		fmt.Fprintln(os.Stderr, "gtlviz: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*inPath)
	if err != nil {
		fatal(err)
	}
	nl, err := netlist.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var groups [][]netlist.CellID
	if *find {
		opt := core.DefaultOptions()
		opt.Seeds = *seeds
		opt.RandSeed = *seed
		if opt.MaxOrderLen >= nl.NumCells() {
			opt.MaxOrderLen = nl.NumCells() / 2
		}
		res, err := core.Find(nl, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("found %d GTLs\n", len(res.GTLs))
		for i := range res.GTLs {
			groups = append(groups, res.GTLs[i].Members)
		}
	}

	pl, err := place.Place(nl, place.Rect{}, place.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("placed %d cells, HPWL = %.0f\n\n", nl.NumCells(), place.HPWL(nl, pl))
	fmt.Println("placement (GTLs as digits):")
	if err := viz.PlacementASCII(pl, groups, *ascii, os.Stdout); err != nil {
		fatal(err)
	}

	m, err := route.Estimate(nl, pl, *grid, *grid)
	if err != nil {
		fatal(err)
	}
	m.SetCapacityRelative(1.25)
	fmt.Println("\ncongestion ('@' is >= 100% utilization):")
	if err := viz.CongestionASCII(m, os.Stdout); err != nil {
		fatal(err)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		writeImg := func(name string, fn func(*os.File) error) {
			p := filepath.Join(*outDir, name)
			f, err := os.Create(p)
			if err != nil {
				fatal(err)
			}
			if err := fn(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", p)
		}
		writeImg("placement.ppm", func(f *os.File) error {
			return viz.PlacementPPM(pl, groups, 768, f)
		})
		writeImg("congestion.pgm", func(f *os.File) error {
			return viz.CongestionPGM(m, f)
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gtlviz:", err)
	os.Exit(1)
}
