// Command gtlviz places a netlist, optionally runs the finder, and
// renders the placement (with GTL overlay) and the RUDY congestion map
// as ASCII art and PPM/PGM images.
//
// Usage:
//
//	gtlviz -in design.tfnet -out dir          # placement + congestion
//	gtlviz -in design.tfnet -find -out dir    # color detected GTLs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tanglefind"
	"tanglefind/internal/cliutil"
	"tanglefind/internal/place"
	"tanglefind/internal/route"
	"tanglefind/internal/viz"
)

// config carries the parsed flags; main builds it from the command
// line and the tests build it directly.
type config struct {
	inPath  string
	auxPath string
	outDir  string
	find    bool
	seeds   int
	grid    int
	ascii   int
	seed    uint64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.inPath, "in", "", "input netlist (.tfnet or .tfb, autodetected)")
	flag.StringVar(&cfg.auxPath, "aux", "", "input netlist as an ISPD Bookshelf .aux file")
	flag.StringVar(&cfg.outDir, "out", "", "output directory for images (optional; ASCII always prints)")
	flag.BoolVar(&cfg.find, "find", false, "run the finder and overlay detected GTLs")
	flag.IntVar(&cfg.seeds, "seeds", 100, "finder seeds when -find is set")
	flag.IntVar(&cfg.grid, "grid", 64, "congestion grid resolution")
	flag.IntVar(&cfg.ascii, "ascii", 48, "ASCII render size")
	flag.Uint64Var(&cfg.seed, "seed", 1, "RNG seed")
	flag.Parse()
	if (cfg.inPath == "") == (cfg.auxPath == "") {
		fmt.Fprintln(os.Stderr, "gtlviz: provide exactly one of -in or -aux")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := cliutil.SignalContext()
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		cliutil.Fatal("gtlviz", err)
	}
}

// run executes the whole flow, writing human-readable output to w.
func run(ctx context.Context, cfg config, w io.Writer) error {
	nl, err := cliutil.LoadNetlist(cfg.inPath, cfg.auxPath)
	if err != nil {
		return err
	}

	var groups [][]tanglefind.CellID
	if cfg.find {
		opt := tanglefind.DefaultOptions()
		opt.Seeds = cfg.seeds
		opt.RandSeed = cfg.seed
		if opt.MaxOrderLen >= nl.NumCells() {
			opt.MaxOrderLen = nl.NumCells() / 2
		}
		finder, err := tanglefind.NewFinder(nl)
		if err != nil {
			return err
		}
		res, err := finder.Find(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "found %d GTLs\n", len(res.GTLs))
		for i := range res.GTLs {
			groups = append(groups, res.GTLs[i].Members)
		}
	}

	pl, err := place.Place(nl, place.Rect{}, place.Options{Seed: cfg.seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "placed %d cells, HPWL = %.0f\n\n", nl.NumCells(), place.HPWL(nl, pl))
	fmt.Fprintln(w, "placement (GTLs as digits):")
	if err := viz.PlacementASCII(pl, groups, cfg.ascii, w); err != nil {
		return err
	}

	m, err := route.Estimate(nl, pl, cfg.grid, cfg.grid)
	if err != nil {
		return err
	}
	m.SetCapacityRelative(1.25)
	fmt.Fprintln(w, "\ncongestion ('@' is >= 100% utilization):")
	if err := viz.CongestionASCII(m, w); err != nil {
		return err
	}

	if cfg.outDir != "" {
		if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
			return err
		}
		writeImg := func(name string, fn func(*os.File) error) error {
			p := filepath.Join(cfg.outDir, name)
			f, err := os.Create(p)
			if err != nil {
				return err
			}
			if err := fn(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintln(w, "wrote", p)
			return nil
		}
		if err := writeImg("placement.ppm", func(f *os.File) error {
			return viz.PlacementPPM(pl, groups, 768, f)
		}); err != nil {
			return err
		}
		if err := writeImg("congestion.pgm", func(f *os.File) error {
			return viz.CongestionPGM(m, f)
		}); err != nil {
			return err
		}
	}
	return nil
}
