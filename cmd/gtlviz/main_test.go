package main

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tanglefind/internal/generate"
)

// writeWorkload generates a small planted-block netlist to a temp file
// and returns its path.
func writeWorkload(t *testing.T, cells, block int) string {
	t.Helper()
	spec := generate.RandomGraphSpec{Cells: cells, Seed: 11}
	if block > 0 {
		spec.Blocks = []generate.BlockSpec{{Size: block}}
	}
	rg, err := generate.NewRandomGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "w.tfnet")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.Netlist.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return p
}

// checkImageHeader asserts the rendered image parses as the expected
// binary netpbm format with positive dimensions.
func checkImageHeader(t *testing.T, path, magic string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("image missing: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Split(bufio.ScanWords)
	var fields []string
	for len(fields) < 3 && sc.Scan() {
		fields = append(fields, sc.Text())
	}
	if len(fields) < 3 || fields[0] != magic {
		t.Fatalf("%s: header %v, want magic %s + dims", path, fields, magic)
	}
	if fields[1] == "0" || fields[2] == "0" {
		t.Fatalf("%s: degenerate dimensions %v", path, fields[1:3])
	}
}

func TestVizEndToEnd(t *testing.T) {
	in := writeWorkload(t, 2500, 200)
	outDir := t.TempDir()
	var buf bytes.Buffer
	err := run(context.Background(), config{
		inPath: in,
		outDir: outDir,
		find:   true,
		seeds:  24,
		grid:   16,
		ascii:  24,
		seed:   1,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "found ") {
		t.Errorf("finder summary missing from output:\n%s", out)
	}
	if !strings.Contains(out, "placed 2500 cells") {
		t.Errorf("placement summary missing from output:\n%s", out)
	}
	checkImageHeader(t, filepath.Join(outDir, "placement.ppm"), "P6")
	checkImageHeader(t, filepath.Join(outDir, "congestion.pgm"), "P5")
}

func TestVizWithoutFinder(t *testing.T) {
	in := writeWorkload(t, 600, 0)
	var buf bytes.Buffer
	err := run(context.Background(), config{
		inPath: in,
		seeds:  8,
		grid:   8,
		ascii:  16,
		seed:   2,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "found ") {
		t.Error("finder ran without -find")
	}
}

func TestVizErrors(t *testing.T) {
	if err := run(context.Background(), config{inPath: "/nonexistent/x.tfnet"}, &bytes.Buffer{}); err == nil {
		t.Error("missing input accepted")
	}
	// A cancelled context aborts the finder run with an error.
	in := writeWorkload(t, 2500, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, config{inPath: in, find: true, seeds: 16, grid: 8, ascii: 16}, &bytes.Buffer{}); err == nil {
		t.Error("cancelled context did not abort the run")
	}
}
