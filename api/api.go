// Package api defines the wire types of the gtlserved HTTP/JSON API:
// netlist registry entries, job requests and statuses, streamed
// progress events and server statistics. The server (internal/server)
// and the Go client (package client) share these definitions, so a
// request marshalled by one side always parses on the other.
//
// Finder options travel as a nested JSON document (JobRequest.Options)
// and are decoded server-side with tanglefind.ParseOptions: absent
// fields keep the paper defaults, unknown fields are rejected.
package api

import (
	"encoding/json"
	"time"

	"tanglefind"
)

// Kind selects what a job computes over a registered netlist.
type Kind string

const (
	// KindFind runs the three-phase TangledLogicFinder and reports the
	// disjoint GTLs.
	KindFind Kind = "find"
	// KindCluster runs the finder, then collapses each detected GTL
	// into a soft-block macro (the floorplanning mitigation).
	KindCluster Kind = "cluster"
	// KindDecompose runs the finder, then re-instantiates complex
	// gates inside the detected GTLs as chains of simple gates (the
	// re-synthesis mitigation).
	KindDecompose Kind = "decompose"
	// KindFindIncremental runs detection over a delta-derived netlist
	// by reusing the recorded state of a previous run on its parent
	// digest wherever the delta provably cannot have changed the
	// computation. The result is identical to KindFind with the same
	// options — only the work differs (see JobResult.Incremental).
	KindFindIncremental Kind = "find_incremental"
	// KindLint runs the structural lint rule engine and reports the
	// findings. Results are cached by digest + rule configuration; a
	// delta-derived digest is linted incrementally against its parent's
	// report when one is available.
	KindLint Kind = "lint"
)

// Valid reports whether k names a known job kind.
func (k Kind) Valid() bool {
	switch k {
	case KindFind, KindCluster, KindDecompose, KindFindIncremental, KindLint:
		return true
	}
	return false
}

// State is a job's position in its lifecycle:
// queued → running → done | failed | cancelled.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// NetlistInfo describes one entry of the content-addressed netlist
// registry. Digest is the lowercase hex SHA-256 of the uploaded bytes
// and is the netlist's identity everywhere in the API.
//
// GET /v1/netlists returns entries in a documented total order:
// resident (Loaded) entries most recently used first, then
// non-resident entries in ascending digest order — two calls over an
// unchanged registry always agree.
type NetlistInfo struct {
	Digest  string  `json:"digest"`
	Format  string  `json:"format"` // "tfb" or "tfnet", sniffed from content
	Bytes   int64   `json:"bytes"`  // uploaded payload size
	Cells   int     `json:"cells"`
	Nets    int     `json:"nets"`
	Pins    int     `json:"pins"`
	AvgPins float64 `json:"avg_pins"`
	// Loaded is false once the parsed netlist has been evicted from
	// memory to respect the registry's pin budget; the metadata stays
	// so clients learn they must re-upload.
	Loaded bool `json:"loaded"`
	// Parent is the digest this netlist was derived from by a delta
	// (empty for direct uploads). Lineage is what routes incremental
	// jobs to the parent's recorded state.
	Parent string `json:"parent,omitempty"`
}

// DeltaResult is the response of POST /v1/netlists/{digest}/deltas:
// the child registry entry plus the edit summary. The child digest is
// the content address (SHA-256 of the canonical .tfb serialization)
// of the patched netlist, so identical post-edit netlists land on one
// entry no matter how they were produced.
type DeltaResult struct {
	Parent string `json:"parent"`
	// Netlist is the child entry; Netlist.Digest addresses it in
	// follow-up jobs.
	Netlist NetlistInfo `json:"netlist"`
	// DirtyCells is the size of the edit's dirty set — the cells
	// incremental detection must treat as changed.
	DirtyCells   int `json:"dirty_cells"`
	CellsAdded   int `json:"cells_added"`
	CellsRemoved int `json:"cells_removed"`
	NetsAdded    int `json:"nets_added"`
	NetsRemoved  int `json:"nets_removed"`
}

// JobRequest submits work over a registered netlist.
type JobRequest struct {
	Kind   Kind   `json:"kind"`
	Digest string `json:"digest"`
	// Options is a nested finder-options JSON document; absent means
	// the paper defaults. Decoded with tanglefind.ParseOptions, so
	// unknown fields are rejected.
	Options json.RawMessage `json:"options,omitempty"`
	// MaxPins is the decompose jobs' gate-pin limit (default 3, the
	// 2-3 pin simple-gate library); ignored by other kinds.
	MaxPins int `json:"max_pins,omitempty"`
	// TimeoutMS bounds the job's compute time (not queue wait); 0
	// means no deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Lint is the rule configuration of a lint job (rule
	// enable/disable lists and thresholds); absent means every rule at
	// default thresholds. Decoded with tanglefind.ParseLintConfig, so
	// unknown fields are rejected. Ignored by other kinds.
	Lint json.RawMessage `json:"lint,omitempty"`
	// RequestID correlates the job with the HTTP request that submitted
	// it in structured logs. The server overwrites it with the request's
	// ID (the X-Request-ID header when the client sent one, otherwise
	// generated), so clients set it via the header, not this field.
	RequestID string `json:"request_id,omitempty"`
}

// GTLInfo is one detected group of tangled logic on the wire.
type GTLInfo struct {
	Size    int                 `json:"size"`
	Cut     int                 `json:"cut"`
	Pins    int                 `json:"pins"`
	NGTLS   float64             `json:"ngtl_s"`
	GTLSD   float64             `json:"gtl_sd"`
	Rent    float64             `json:"rent"`
	Seed    tanglefind.CellID   `json:"seed"`
	Members []tanglefind.CellID `json:"members"`
}

// ClusterInfo summarizes a cluster job's soft-block netlist.
type ClusterInfo struct {
	Macros     int `json:"macros"`      // one per detected GTL
	MacroCells int `json:"macro_cells"` // clustered netlist cell count
	MacroNets  int `json:"macro_nets"`
}

// DecomposeInfo summarizes a decompose job's resynthesized netlist.
type DecomposeInfo struct {
	CellsAdded int `json:"cells_added"` // new simple gates
	Cells      int `json:"cells"`       // resulting netlist size
	Nets       int `json:"nets"`
	Pins       int `json:"pins"`
}

// JobResult is the outcome of a completed job. Every kind carries the
// finder outcome; Cluster/Decompose carry their mitigation summary on
// top. Levels is present only for multilevel runs (Options.Levels > 1
// with a hierarchy that actually formed): the per-level breakdown of
// the coarsen → detect → project + refine pipeline.
type JobResult struct {
	GTLs       []GTLInfo               `json:"gtls"`
	Candidates int                     `json:"candidates"`
	SeedsRun   int                     `json:"seeds_run"`
	Rent       float64                 `json:"rent"`
	EngineMS   float64                 `json:"engine_ms"` // engine compute time
	Levels     []tanglefind.LevelStats `json:"levels,omitempty"`
	// Incremental is the reuse breakdown of a find_incremental run:
	// reused_groups/reseeded_cells and friends. Present only for
	// incremental jobs.
	Incremental *tanglefind.IncrStats `json:"incremental,omitempty"`
	// Sched describes how the run's seed schedule was executed across
	// engine workers (resolved worker count, steal traffic, per-worker
	// seed counts). Purely diagnostic — results are bit-identical for
	// any worker count; absent for cached and lint results.
	Sched     *tanglefind.SchedStats `json:"sched,omitempty"`
	Cluster   *ClusterInfo           `json:"cluster,omitempty"`
	Decompose *DecomposeInfo         `json:"decompose,omitempty"`
	// Lint is a lint job's full report: sorted fingerprinted findings,
	// per-rule stats and any skipped rules. Present only for lint jobs
	// (which leave every finder field zero).
	Lint *tanglefind.LintReport `json:"lint,omitempty"`
	// Stages is the job's flat stage-timing breakdown as
	// {"stage": milliseconds}: "queue_wait" (submit → start), "engine"
	// (the compute call) and "merge" (result assembly + mitigation),
	// plus the engine's own phases prefixed "engine_" ("engine_grow",
	// "engine_score", "engine_recombine", "engine_prune", and the
	// multilevel/incremental extras — see tanglefind.Result.Stages).
	// Non-empty on every job that reached a terminal state by running;
	// cached results carry the breakdown of the run that populated the
	// cache.
	Stages tanglefind.StageTimings `json:"stages,omitempty"`
}

// JobStatus is a job's externally visible state.
type JobStatus struct {
	ID     string `json:"id"`
	Kind   Kind   `json:"kind"`
	Digest string `json:"digest"`
	State  State  `json:"state"`
	// Cached is true when the result was served from the
	// digest+options result cache without running the engine.
	Cached     bool                 `json:"cached"`
	Error      string               `json:"error,omitempty"`
	Progress   *tanglefind.Progress `json:"progress,omitempty"`
	Result     *JobResult           `json:"result,omitempty"`
	CreatedAt  time.Time            `json:"created_at"`
	StartedAt  *time.Time           `json:"started_at,omitempty"`
	FinishedAt *time.Time           `json:"finished_at,omitempty"`
	// RequestID is the submitting HTTP request's ID, for correlating
	// the job with the server's structured request and job logs.
	RequestID string `json:"request_id,omitempty"`
}

// Event is one message on a job's progress stream. The first event a
// subscriber receives is always a snapshot of the current state, so a
// consumer that attaches at any point sees at least one event; a
// terminal-state event ends the stream.
type Event struct {
	JobID    string               `json:"job_id"`
	State    State                `json:"state"`
	Progress *tanglefind.Progress `json:"progress,omitempty"`
	Error    string               `json:"error,omitempty"`
	// Stages carries the job's stage-timing breakdown on terminal
	// events whose job produced a result (see JobResult.Stages), so
	// stream consumers get the latency split without refetching.
	Stages tanglefind.StageTimings `json:"stages,omitempty"`
}

// JobStats is the "jobs" half of the GET /v1/stats payload. Two kinds
// of field live here: cumulative counters since process start
// (Submitted through WorkerGrantsCapped) and point-in-time gauges
// sampled at the stats call (Queued, Running, QueueDepth,
// InFlightByKind, CachedSets, IncrStateBytes). The same values back
// the gtl_jobs_* families on GET /metrics — both surfaces read the
// manager's counters, so they always agree in a quiesced server.
type JobStats struct {
	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Cancelled  int64 `json:"cancelled"`
	CacheHits  int64 `json:"cache_hits"`
	EngineRuns int64 `json:"engine_runs"` // jobs that actually ran the finder
	Queued     int   `json:"queued"`      // current
	Running    int   `json:"running"`     // current
	// QueueDepth is the pending queue's current length — jobs accepted
	// but not yet picked up by a worker. It can briefly differ from
	// Queued (a job leaves the pending list just before its state
	// flips to running).
	QueueDepth int `json:"queue_depth"`
	// InFlightByKind breaks the current non-terminal jobs
	// (queued + running) down by job kind; kinds with zero in-flight
	// jobs are omitted.
	InFlightByKind map[string]int `json:"in_flight_by_kind,omitempty"`
	CachedSets     int            `json:"cached_results"`
	// RunsByLevels counts completed engine runs by the number of
	// hierarchy levels they actually used ("1" = flat), so operators
	// can see how much traffic rides the multilevel pipeline.
	RunsByLevels map[string]int64 `json:"runs_by_levels,omitempty"`
	// IncrementalRuns counts completed find_incremental engine runs;
	// IncrementalFallbacks counts those that degraded to a full run
	// (no usable parent state or an oversized dirty region).
	IncrementalRuns      int64 `json:"incremental_runs,omitempty"`
	IncrementalFallbacks int64 `json:"incremental_fallbacks,omitempty"`
	// IncrStateBytes estimates the memory retained by recorded
	// incremental seed states (the -incr-states LRU) — footprint
	// bitsets plus stored growth curves.
	IncrStateBytes int64 `json:"incr_state_bytes,omitempty"`
	// LintRuns counts completed lint engine runs; LintIncremental
	// counts the subset answered incrementally from a parent report
	// (cache hits appear under CacheHits, not here).
	LintRuns        int64 `json:"lint_runs,omitempty"`
	LintIncremental int64 `json:"lint_incremental,omitempty"`
	// ParallelSeedsStolen totals the seeds migrated between engine
	// workers by the work-stealing scheduler across all completed
	// runs — sustained zero under parallel load means seed costs are
	// balanced; high values mean stealing is doing real rebalancing.
	ParallelSeedsStolen int64 `json:"parallel_seeds_stolen,omitempty"`
	// WorkerGrantsCapped counts jobs whose engine-worker request was
	// trimmed to fit the pool-wide budget (Config.EngineWorkers), the
	// fairness clamp that keeps concurrent jobs from oversubscribing
	// the machine.
	WorkerGrantsCapped int64 `json:"worker_grants_capped,omitempty"`
	// CoalescedJobs counts submissions that attached as followers of
	// an identical in-flight job (same digest+kind+options while a
	// matching job was queued or running): they received their own job
	// id, stream and result without an extra engine run. Exactly one
	// engine run serves a coalesced group.
	CoalescedJobs int64 `json:"coalesced_jobs,omitempty"`
	// RewarmedResults counts result-cache entries restored from the
	// store's journal at startup (durable serving only).
	RewarmedResults int64 `json:"rewarmed_results,omitempty"`
}

// StoreStats describes the netlist registry's memory state.
type StoreStats struct {
	Netlists   int   `json:"netlists"`    // currently loaded
	Tombstones int   `json:"tombstones"`  // evicted, metadata retained
	PinsLoaded int64 `json:"pins_loaded"` // Σ pins of loaded netlists
	PinBudget  int64 `json:"pin_budget"`  // eviction threshold; 0 = unlimited
	Evictions  int64 `json:"evictions"`   // cumulative
	// EngineBytes estimates the memory retained by the registry's
	// finder engines beyond the netlists themselves: pooled per-worker
	// scratch plus cached coarsening hierarchies — the footprint the
	// pin budget alone does not see.
	EngineBytes int64 `json:"engine_bytes"`
	// Durable reports whether the registry runs on a persistent
	// backend (gtlserved -data-dir): ingested payloads, delta lineage
	// and completed job results survive a restart, and eviction
	// becomes invisible (the blob is lazily re-parsed on next touch
	// instead of demanding a re-upload).
	Durable bool `json:"durable"`
	// RecoveredNetlists counts registry entries rebuilt from the
	// journal at startup; their payloads are re-parsed lazily on first
	// touch, not at recovery time.
	RecoveredNetlists int `json:"recovered_netlists,omitempty"`
	// RecoveredResults counts distinct journaled job results handed to
	// the result cache at startup.
	RecoveredResults int `json:"recovered_results,omitempty"`
	// LazyReloads counts blobs re-parsed on touch since startup —
	// recovered entries resolving for the first time, plus evicted
	// entries transparently reloading under a durable backend.
	LazyReloads int64 `json:"lazy_reloads,omitempty"`
	// JournalTruncatedBytes is the size of the torn journal tail
	// discarded at startup: non-zero exactly when the previous process
	// died mid-append, and bounded by one record.
	JournalTruncatedBytes int64 `json:"journal_truncated_bytes,omitempty"`
}

// ServerStats is the GET /v1/stats payload: the job manager's
// counters and gauges (see JobStats for which is which) plus the
// netlist registry's memory state. The Prometheus exposition on
// GET /metrics mirrors these same values as gtl_jobs_* / gtl_store_*
// families, with request-latency and per-stage histograms on top.
type ServerStats struct {
	Jobs  JobStats   `json:"jobs"`
	Store StoreStats `json:"store"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}
