package tanglefind

import (
	"tanglefind/internal/place"
	"tanglefind/internal/resynth"
)

// The paper's introduction lists three uses for detected GTLs:
// routability (cell inflation — see Inflate), floorplanning (soft
// blocks) and logic re-synthesis. This file exposes the latter two.

// Clustering is the soft-block mapping produced by Cluster.
type Clustering = place.Clustering

// Cluster collapses each GTL into one macro cell, returning the
// clustered netlist and the id mapping — the paper's "soft block"
// formation for floorplanning.
func Cluster(nl *Netlist, groups [][]CellID) (*Clustering, error) {
	return place.Cluster(nl, groups)
}

// PlaceSoftBlocks runs two-level soft-block placement: the clustered
// netlist is placed first, then each GTL's cells are placed inside the
// region its macro received.
func PlaceSoftBlocks(nl *Netlist, groups [][]CellID, die Rect, opt PlaceOptions) (*Placement, error) {
	return place.PlaceSoftBlocks(nl, groups, die, opt)
}

// ResynthResult describes a Decompose outcome.
type ResynthResult = resynth.Result

// Decompose re-instantiates every complex gate (more than maxPins
// pins) inside the given GTLs as a chain of simple gates — the paper's
// re-synthesis mitigation: more area, less interconnect density.
func Decompose(nl *Netlist, groups [][]CellID, maxPins int) (*ResynthResult, error) {
	return resynth.Decompose(nl, groups, maxPins)
}
