// Bookshelf example: write a generated circuit in the ISPD Bookshelf
// format, read it back, verify the round trip, and run the finder on
// the reloaded netlist — the workflow for users with real ISPD 2005/06
// benchmark files.
//
//	go run ./examples/bookshelf [dir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tanglefind"
	"tanglefind/internal/bookshelf"
)

func main() {
	dir := os.TempDir()
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}

	// Generate a circuit with two planted structures.
	rg, err := tanglefind.NewRandomGraph(tanglefind.RandomGraphSpec{
		Cells:  12_000,
		Blocks: []tanglefind.BlockSpec{{Size: 600}, {Size: 1200}},
		Seed:   5,
	})
	if err != nil {
		log.Fatal(err)
	}
	nl := rg.Netlist

	// Write it as Bookshelf .aux/.nodes/.nets.
	if err := bookshelf.Write(dir, "demo", nl); err != nil {
		log.Fatal(err)
	}
	aux := filepath.Join(dir, "demo.aux")
	fmt.Printf("wrote %s (+ .nodes, .nets)\n", aux)

	// Read it back and check the round trip.
	loaded, err := bookshelf.ReadAux(aux)
	if err != nil {
		log.Fatal(err)
	}
	back := loaded.Netlist
	if back.NumCells() != nl.NumCells() || back.NumNets() != nl.NumNets() || back.NumPins() != nl.NumPins() {
		log.Fatalf("round trip mismatch: %d/%d/%d vs %d/%d/%d",
			back.NumCells(), back.NumNets(), back.NumPins(),
			nl.NumCells(), nl.NumNets(), nl.NumPins())
	}
	fmt.Printf("round trip OK: %d cells, %d nets, %d pins\n",
		back.NumCells(), back.NumNets(), back.NumPins())

	// Run the finder on the reloaded netlist.
	opt := tanglefind.DefaultOptions()
	opt.Seeds = 80
	opt.MaxOrderLen = 4000
	res, err := tanglefind.Find(back, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finder on reloaded netlist: %d GTLs\n", len(res.GTLs))
	for i, g := range res.GTLs {
		fmt.Printf("  GTL %d: %d cells, cut %d, GTL-SD %.4f\n", i+1, g.Size(), g.Cut, g.GTLSD)
	}
}
