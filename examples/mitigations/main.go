// Mitigations example: the paper's introduction proposes three uses for
// detected GTLs — cell inflation (routability), soft blocks
// (floorplanning) and re-synthesis. This example runs all three on the
// same design and compares the resulting congestion side by side.
//
//	go run ./examples/mitigations
package main

import (
	"fmt"
	"log"

	"tanglefind"
)

func main() {
	design, err := tanglefind.NewIndustrialProxy(0.02, 8)
	if err != nil {
		log.Fatal(err)
	}
	nl := design.Netlist
	fmt.Printf("design: %d cells, %d nets\n", nl.NumCells(), nl.NumNets())

	// Detect the GTLs once.
	opt := tanglefind.DefaultOptions()
	opt.Seeds = 128
	opt.MaxOrderLen = nl.NumCells() / 2
	found, err := tanglefind.Find(nl, opt)
	if err != nil {
		log.Fatal(err)
	}
	// Mitigate only the strong GTLs (score « 1): the paper applies its
	// techniques "to a small fraction of the design" — inflating or
	// re-synthesizing weak, near-ambient groups wastes area for no
	// congestion win.
	var groups [][]tanglefind.CellID
	mitigated := 0
	for _, g := range found.GTLs {
		if g.Score <= 0.1 {
			groups = append(groups, g.Members)
			mitigated += g.Size()
		}
	}
	fmt.Printf("finder: %d GTLs, %d strong ones selected for mitigation (%.0f%% of cells)\n\n",
		len(found.GTLs), len(groups), 100*float64(mitigated)/float64(nl.NumCells()))

	const grid = 48
	type outcome struct {
		name string
		st   tanglefind.CongestionStats
		hpwl float64
		nets int
	}
	var rows []outcome
	var baseCapPerArea float64

	measure := func(name string, n *tanglefind.Netlist, pl *tanglefind.Placement) {
		m, err := tanglefind.EstimateCongestion(n, pl, grid, grid)
		if err != nil {
			log.Fatal(err)
		}
		tileArea := pl.Die.Area() / float64(grid*grid)
		if baseCapPerArea == 0 {
			m.SetCapacityRelative(1.25)
			baseCapPerArea = m.Capacity / tileArea
		} else {
			m.Capacity = baseCapPerArea * tileArea // same absolute supply
		}
		rows = append(rows, outcome{name, tanglefind.CongestionStatsFor(n, pl, m), tanglefind.HPWL(n, pl), n.NumNets()})
	}

	// Baseline: flat placement.
	pl, err := tanglefind.Place(nl, tanglefind.Rect{}, tanglefind.PlaceOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	measure("baseline (flat)", nl, pl)

	// Mitigation 1: 4x cell inflation of the GTLs.
	inflated, err := tanglefind.Inflate(nl, groups, 4)
	if err != nil {
		log.Fatal(err)
	}
	plInf, err := tanglefind.Place(inflated, tanglefind.Rect{}, tanglefind.PlaceOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	measure("inflation 4x", inflated, plInf)

	// Mitigation 2: soft-block floorplanning.
	plSoft, err := tanglefind.PlaceSoftBlocks(nl, groups, tanglefind.Rect{}, tanglefind.PlaceOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	measure("soft blocks", nl, plSoft)

	// Mitigation 3: re-synthesize GTL complex gates into simple gates.
	rs, err := tanglefind.Decompose(nl, groups, 3)
	if err != nil {
		log.Fatal(err)
	}
	plRs, err := tanglefind.Place(rs.Netlist, tanglefind.Rect{}, tanglefind.PlaceOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	measure(fmt.Sprintf("resynthesis (+%d cells)", rs.CellsAdded), rs.Netlist, plRs)

	// Resynthesis adds nets, so overflow counts are reported as a
	// fraction of that flow's nets to stay comparable.
	fmt.Printf("%-26s %14s %14s %14s %10s\n",
		"flow", ">=100% nets", ">=90% nets", "worst20% cong", "HPWL")
	for _, r := range rows {
		fmt.Printf("%-26s %7d (%2.0f%%) %7d (%2.0f%%) %13.0f%% %10.0f\n",
			r.name,
			r.st.NetsThrough100, 100*float64(r.st.NetsThrough100)/float64(r.nets),
			r.st.NetsThrough90, 100*float64(r.st.NetsThrough90)/float64(r.nets),
			100*r.st.AvgWorst20, r.hpwl)
	}
	fmt.Println("\n(inflation and resynthesis trade area/wirelength for lower peak")
	fmt.Println(" congestion; soft blocks keep each GTL together as a placement unit)")
}
