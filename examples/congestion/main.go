// Congestion example: the paper's §5.1.3 flow on the industrial-circuit
// proxy — find GTLs, place, measure RUDY congestion, inflate the GTL
// cells 4×, re-place, and show how much the hotspots relax (the paper's
// Figure 1 → Figure 7 transition).
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"
	"os"

	"tanglefind"
	"tanglefind/internal/viz"
)

func main() {
	design, err := tanglefind.NewIndustrialProxy(0.03, 11)
	if err != nil {
		log.Fatal(err)
	}
	nl := design.Netlist
	fmt.Printf("industrial proxy: %d cells, %d nets (5 dissolved-ROM blocks)\n",
		nl.NumCells(), nl.NumNets())

	// 1. Detect the tangled blocks with the finder (not ground truth).
	opt := tanglefind.DefaultOptions()
	opt.Seeds = 128
	opt.MaxOrderLen = nl.NumCells() / 2
	found, err := tanglefind.Find(nl, opt)
	if err != nil {
		log.Fatal(err)
	}
	groups := make([][]tanglefind.CellID, len(found.GTLs))
	tangled := 0
	for i, g := range found.GTLs {
		groups[i] = g.Members
		tangled += g.Size()
	}
	fmt.Printf("finder: %d GTLs covering %d cells (%.1f%% of design)\n\n",
		len(found.GTLs), tangled, 100*float64(tangled)/float64(nl.NumCells()))

	// 2. Place and measure congestion.
	pl, err := tanglefind.Place(nl, tanglefind.Rect{}, tanglefind.PlaceOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	before, err := tanglefind.EstimateCongestion(nl, pl, 48, 48)
	if err != nil {
		log.Fatal(err)
	}
	before.SetCapacityRelative(1.25)
	stBefore := tanglefind.CongestionStatsFor(nl, pl, before)

	// 3. Inflate the found GTL cells 4× and re-place.
	inflated, err := tanglefind.Inflate(nl, groups, 4)
	if err != nil {
		log.Fatal(err)
	}
	pl2, err := tanglefind.Place(inflated, tanglefind.Rect{}, tanglefind.PlaceOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	after, err := tanglefind.EstimateCongestion(inflated, pl2, 48, 48)
	if err != nil {
		log.Fatal(err)
	}
	// Fixed absolute capacity per unit die area across both runs.
	after.Capacity = before.Capacity * (after.Die.Area() / before.Die.Area())
	stAfter := tanglefind.CongestionStatsFor(inflated, pl2, after)

	fmt.Printf("%-34s %10s %10s\n", "metric", "before", "after")
	fmt.Printf("%-34s %10d %10d\n", "nets through >=100% tiles", stBefore.NetsThrough100, stAfter.NetsThrough100)
	fmt.Printf("%-34s %10d %10d\n", "nets through >=90% tiles", stBefore.NetsThrough90, stAfter.NetsThrough90)
	fmt.Printf("%-34s %9.0f%% %9.0f%%\n", "avg congestion (worst 20% nets)", 100*stBefore.AvgWorst20, 100*stAfter.AvgWorst20)
	fmt.Printf("%-34s %9.0f%% %9.0f%%\n", "max tile utilization", 100*stBefore.MaxTile, 100*stAfter.MaxTile)

	fmt.Println("\ncongestion before ('@' = overflow):")
	if err := viz.CongestionASCII(before, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncongestion after 4x inflation:")
	if err := viz.CongestionASCII(after, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
