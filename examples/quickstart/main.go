// Quickstart: build a small netlist through the public API, plant a
// tangled block in it, run the TangledLogicFinder and print the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tanglefind"
)

func main() {
	// Generate a 30K-cell random circuit containing one 2K-cell
	// tangled block (think: a ROM dissolved into random logic).
	rg, err := tanglefind.NewRandomGraph(tanglefind.RandomGraphSpec{
		Cells:  30_000,
		Blocks: []tanglefind.BlockSpec{{Size: 2000}},
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	nl := rg.Netlist
	fmt.Printf("netlist: %d cells, %d nets, A(G) = %.2f pins/cell\n",
		nl.NumCells(), nl.NumNets(), nl.AvgPins())

	// Run the finder with the paper's defaults, scaled-down ordering.
	opt := tanglefind.DefaultOptions()
	opt.Seeds = 64
	opt.MaxOrderLen = 6000
	res, err := tanglefind.Find(nl, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d GTLs (from %d candidates) in %s\n\n",
		len(res.GTLs), res.Candidates, res.Elapsed)
	for i, g := range res.GTLs {
		fmt.Printf("GTL %d: %d cells, cut %d, nGTL-S %.4f, GTL-SD %.4f\n",
			i+1, g.Size(), g.Cut, g.NGTLS, g.GTLSD)
	}

	// Compare with the ground truth the generator planted.
	truth := rg.Blocks[0]
	inTruth := make(map[tanglefind.CellID]bool, len(truth))
	for _, c := range truth {
		inTruth[c] = true
	}
	if len(res.GTLs) > 0 {
		hit := 0
		for _, c := range res.GTLs[0].Members {
			if inTruth[c] {
				hit++
			}
		}
		fmt.Printf("\nbest GTL vs planted block: %d/%d truth cells recovered, %d extra\n",
			hit, len(truth), res.GTLs[0].Size()-hit)
	}
}
