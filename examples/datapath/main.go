// Datapath example: the paper's motivating scenario — a synthesized
// netlist where high-level structures (adders, decoders, a dissolved
// ROM) lost their hierarchy labels during handoff. The finder recovers
// them from pure gate-level connectivity, and the score curve of a
// linear ordering shows the paper's Figure 2 shape.
//
// Expect the decoder to be found unreliably: its gates connect only
// through wide fanout (select/literal) nets, which is exactly the
// "structures driven by select lines" case the paper's future-work
// section says the metrics do not yet handle.
//
//	go run ./examples/datapath
package main

import (
	"fmt"
	"log"

	"tanglefind"
	"tanglefind/internal/ds"
	"tanglefind/internal/generate"
)

func main() {
	// A Rent-rule-obeying host circuit (what the rest of the chip
	// looks like at gate level)...
	b, hostOpen, err := generate.NewHierarchicalHost(generate.HierSpec{
		Cells: 24_000, Rent: 0.63, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	// ...with real logic structures spliced in, interfaces narrowed by
	// their consumer logic exactly as synthesis leaves them.
	rng := ds.NewRNG(99)
	type planted struct {
		name  string
		cells []tanglefind.CellID
	}
	var truth []planted
	embed := func(f tanglefind.Fragment) {
		cells := generate.Embed(b, f, hostOpen, rng)
		truth = append(truth, planted{f.Name, cells})
	}
	embed(generate.WithReducedInterface(generate.CarryLookaheadAdder(64), 10))
	embed(generate.WithReducedInterface(generate.Decoder(7), 8))
	embed(generate.WithReducedInterface(generate.MuxTree(256), 6))
	embed(generate.WithReducedInterface(generate.ArrayMultiplier(12), 8))
	embed(generate.DissolvedROM(3000, 36, 5))

	nl, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %d cells, %d nets; planted %d structures\n\n",
		nl.NumCells(), nl.NumNets(), len(truth))

	opt := tanglefind.DefaultOptions()
	opt.Seeds = 300 // the smallest structure covers ~1% of the cells
	opt.MaxOrderLen = 8000
	res, err := tanglefind.Find(nl, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finder: %d disjoint GTLs\n", len(res.GTLs))
	for _, p := range truth {
		in := make(map[tanglefind.CellID]bool, len(p.cells))
		for _, c := range p.cells {
			in[c] = true
		}
		best, hit := -1, 0
		for i, g := range res.GTLs {
			h := 0
			for _, c := range g.Members {
				if in[c] {
					h++
				}
			}
			if h > hit {
				hit, best = h, i
			}
		}
		if best < 0 {
			fmt.Printf("  %-8s (%5d cells): NOT FOUND\n", p.name, len(p.cells))
			continue
		}
		g := res.GTLs[best]
		fmt.Printf("  %-8s (%5d cells): found as %5d-cell GTL, cut %4d, GTL-SD %.4f (%.1f%% recovered)\n",
			p.name, len(p.cells), g.Size(), g.Cut, g.GTLSD, 100*float64(hit)/float64(len(p.cells)))
	}

	// Show the Figure 2-style score curve from a seed inside the ROM.
	fmt.Println("\nnGTL-S along an ordering grown from inside the dissolved ROM:")
	rom := truth[len(truth)-1].cells
	ord := tanglefind.GrowOrdering(nl, rom[0], 6000, tanglefind.DefaultOptions())
	curve := tanglefind.ScoreCurve(ord, tanglefind.MetricNGTLS, nl.AvgPins())
	for k := 250; k <= ord.Len(); k += 250 {
		bar := int(curve.Scores[k-1] * 40)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("  size %5d  score %6.3f  %s\n", k, curve.Scores[k-1], stars(bar))
	}
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '*'
	}
	return string(s)
}
