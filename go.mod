module tanglefind

go 1.24
