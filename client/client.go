// Package client is a small Go client for the gtlserved HTTP API: it
// uploads netlists, submits find/cluster/decompose jobs, polls or
// streams their progress and fetches results, speaking the wire types
// of package api. The server's own end-to-end tests drive it, so its
// coverage tracks the API exactly.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tanglefind"
	"tanglefind/api"
)

// Client talks to one gtlserved instance.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for a base URL like "http://127.0.0.1:8080".
// The optional httpClient overrides http.DefaultClient (tests pass an
// httptest server's client).
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// BaseURL returns the server base URL the client targets.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response decoded from the server.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.StatusCode, e.Message)
}

// UploadNetlist registers a raw .tfnet/.tfb payload and returns its
// registry entry (keyed by content digest; re-uploads are idempotent).
func (c *Client) UploadNetlist(ctx context.Context, data []byte) (api.NetlistInfo, error) {
	var info api.NetlistInfo
	err := c.do(ctx, http.MethodPost, "/v1/netlists", "application/octet-stream", bytes.NewReader(data), &info)
	return info, err
}

// Netlists lists the registry, most recently used first.
func (c *Client) Netlists(ctx context.Context) ([]api.NetlistInfo, error) {
	var out []api.NetlistInfo
	err := c.do(ctx, http.MethodGet, "/v1/netlists", "", nil, &out)
	return out, err
}

// Netlist fetches one registry entry's metadata.
func (c *Client) Netlist(ctx context.Context, digest string) (api.NetlistInfo, error) {
	var info api.NetlistInfo
	err := c.do(ctx, http.MethodGet, "/v1/netlists/"+digest, "", nil, &info)
	return info, err
}

// ApplyDelta applies an ECO delta to the registered parent netlist;
// the server registers the patched netlist under its own content
// digest and returns the child entry plus the edit summary. Submit a
// find_incremental job on the child digest to detect incrementally.
func (c *Client) ApplyDelta(ctx context.Context, parent string, d *tanglefind.Delta) (api.DeltaResult, error) {
	body, err := json.Marshal(d)
	if err != nil {
		return api.DeltaResult{}, err
	}
	return c.ApplyDeltaJSON(ctx, parent, body)
}

// ApplyDeltaJSON is ApplyDelta for an already-serialized delta
// document (e.g. a patch file).
func (c *Client) ApplyDeltaJSON(ctx context.Context, parent string, deltaJSON []byte) (api.DeltaResult, error) {
	var res api.DeltaResult
	err := c.do(ctx, http.MethodPost, "/v1/netlists/"+parent+"/deltas", "application/json", bytes.NewReader(deltaJSON), &res)
	return res, err
}

// Submit sends a job request.
func (c *Client) Submit(ctx context.Context, req api.JobRequest) (api.JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return api.JobStatus{}, err
	}
	var st api.JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/jobs", "application/json", bytes.NewReader(body), &st)
	return st, err
}

// SubmitFind submits a find job; a nil opt means the paper defaults.
func (c *Client) SubmitFind(ctx context.Context, digest string, opt *tanglefind.Options) (api.JobStatus, error) {
	req := api.JobRequest{Kind: api.KindFind, Digest: digest}
	if opt != nil {
		raw, err := json.Marshal(opt)
		if err != nil {
			return api.JobStatus{}, err
		}
		req.Options = raw
	}
	return c.Submit(ctx, req)
}

// SubmitFindIncremental submits an incremental find job on a
// delta-derived digest; a nil opt means the paper defaults. The
// options must match the parent run's for state reuse (the job still
// succeeds otherwise — it just falls back to a full run).
func (c *Client) SubmitFindIncremental(ctx context.Context, digest string, opt *tanglefind.Options) (api.JobStatus, error) {
	req := api.JobRequest{Kind: api.KindFindIncremental, Digest: digest}
	if opt != nil {
		raw, err := json.Marshal(opt)
		if err != nil {
			return api.JobStatus{}, err
		}
		req.Options = raw
	}
	return c.Submit(ctx, req)
}

// SubmitLint submits a structural lint job; a nil cfg means every
// rule at default thresholds. Lint results are cached server-side by
// digest + rule configuration, and digests derived by a delta are
// linted incrementally against their parent's report when possible.
func (c *Client) SubmitLint(ctx context.Context, digest string, cfg *tanglefind.LintConfig) (api.JobStatus, error) {
	req := api.JobRequest{Kind: api.KindLint, Digest: digest}
	if cfg != nil {
		raw, err := json.Marshal(cfg)
		if err != nil {
			return api.JobStatus{}, err
		}
		req.Lint = raw
	}
	return c.Submit(ctx, req)
}

// Job fetches a job's status (result included once done).
func (c *Client) Job(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, "", nil, &st)
	return st, err
}

// Jobs lists retained jobs, newest first.
func (c *Client) Jobs(ctx context.Context) ([]api.JobStatus, error) {
	var out []api.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", "", nil, &out)
	return out, err
}

// Cancel stops a job and returns its status after the request.
func (c *Client) Cancel(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, "", nil, &st)
	return st, err
}

// Stats fetches server statistics.
func (c *Client) Stats(ctx context.Context) (api.ServerStats, error) {
	var st api.ServerStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", "", nil, &st)
	return st, err
}

// Metrics fetches the raw Prometheus text exposition from GET
// /metrics — the operator-facing mirror of Stats, left unparsed so
// callers can feed it to scrapers or parse-back tests verbatim.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// StreamEvents consumes a job's SSE progress stream, invoking fn for
// every event in order. It returns nil when the stream ends (terminal
// event or fn returning false) and ctx's error when cancelled.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(api.Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // blank separators and comments
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("client: bad event %q: %w", data, err)
		}
		if !fn(ev) || ev.State.Terminal() {
			return nil
		}
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// A clean EOF without a terminal event means the connection was
	// dropped (server restart, proxy timeout) — the job's outcome was
	// never delivered, which must not look like a completed stream.
	return fmt.Errorf("client: event stream for %s ended before a terminal event: %w", id, io.ErrUnexpectedEOF)
}

// Wait polls a job until it reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (api.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// do performs one JSON round trip.
func (c *Client) do(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	msg := resp.Status
	var er api.ErrorResponse
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er) == nil && er.Error != "" {
		msg = er.Error
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg}
}
