package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"tanglefind/api"
)

// TestStreamEventsParsing feeds a canned SSE stream (with comments
// and keep-alive noise) and checks events arrive in order and the
// stream ends at the terminal event.
func TestStreamEventsParsing(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/job-7/events" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, ": keep-alive comment\n\n")
		fmt.Fprint(w, "data: {\"job_id\":\"job-7\",\"state\":\"queued\"}\n\n")
		fmt.Fprint(w, "data: {\"job_id\":\"job-7\",\"state\":\"running\",\"progress\":{\"seeds_done\":3,\"seeds_total\":10,\"candidates\":1}}\n\n")
		fmt.Fprint(w, "data: {\"job_id\":\"job-7\",\"state\":\"done\"}\n\n")
		fmt.Fprint(w, "data: {\"job_id\":\"job-7\",\"state\":\"never-delivered\"}\n\n")
	}))
	defer hs.Close()

	c := New(hs.URL+"/", hs.Client()) // trailing slash must not hurt
	var states []api.State
	err := c.StreamEvents(context.Background(), "job-7", func(ev api.Event) bool {
		states = append(states, ev.State)
		if ev.State == api.StateRunning && ev.Progress.SeedsDone != 3 {
			t.Errorf("progress = %+v", ev.Progress)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []api.State{api.StateQueued, api.StateRunning, api.StateDone}
	if len(states) != len(want) {
		t.Fatalf("states = %v", states)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Errorf("state[%d] = %s, want %s", i, states[i], want[i])
		}
	}
}

func TestStreamEventsConsumerStops(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		for i := 0; i < 100; i++ {
			fmt.Fprintf(w, "data: {\"job_id\":\"j\",\"state\":\"running\"}\n\n")
		}
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	var n int
	err := c.StreamEvents(context.Background(), "j", func(api.Event) bool {
		n++
		return n < 2
	})
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestAPIErrorDecoding(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, `{"error":"kettle only"}`)
	}))
	defer hs.Close()
	c := New(hs.URL, hs.Client())
	_, err := c.Job(context.Background(), "whatever")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v", err)
	}
	if ae.StatusCode != http.StatusTeapot || ae.Message != "kettle only" {
		t.Errorf("APIError = %+v", ae)
	}
	if ae.Error() == "" {
		t.Error("empty error string")
	}
}
