// The parallel-scaling regression guard over the committed
// BENCH_parallel.json record. Structural properties of the record are
// checked everywhere; the live >10% regression comparison needs real
// cores on both sides — the committed record must have been measured
// with cpus >= 2 and the running machine must have at least as many —
// and skips (loudly) otherwise, so a single-core CI runner degrades
// to record validation instead of producing a meaningless ratio.
package tanglefind_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"tanglefind/internal/experiments"
)

func loadParallelRecord(t *testing.T) *experiments.ParallelRecord {
	t.Helper()
	data, err := os.ReadFile("BENCH_parallel.json")
	if err != nil {
		t.Fatalf("committed parallel record missing: %v (regenerate with gtlexp -exp parallel -dump .)", err)
	}
	var rec experiments.ParallelRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("BENCH_parallel.json: %v", err)
	}
	return &rec
}

func TestParallelScalingGuard(t *testing.T) {
	rec := loadParallelRecord(t)
	if len(rec.Results) == 0 {
		t.Fatal("record holds no sweep rows")
	}
	if rec.CPUs < 1 || rec.Cells <= 0 || rec.FlatMS <= 0 {
		t.Fatalf("implausible record provenance: cpus=%d cells=%d flat_ms=%g", rec.CPUs, rec.Cells, rec.FlatMS)
	}
	if rec.Results[0].Workers != 1 {
		t.Fatalf("sweep must anchor at workers=1, got %d", rec.Results[0].Workers)
	}
	for _, row := range rec.Results {
		if !row.Match {
			t.Fatalf("workers=%d row recorded a determinism mismatch; the record is invalid", row.Workers)
		}
		if row.FindMS <= 0 || row.Speedup <= 0 {
			t.Fatalf("workers=%d row has no timing: %+v", row.Workers, row)
		}
	}

	// The live regression comparison: re-measure the self-speedup at
	// the record's widest honestly-measurable row and fail on >10%
	// regression against the committed ratio.
	if rec.CPUs < 2 {
		t.Skipf("committed record was measured on %d CPU (determinism-only sweep); no scaling baseline to guard — regenerate on a multi-core box", rec.CPUs)
	}
	if runtime.NumCPU() < 2 {
		t.Skip("single-core machine; scaling is unmeasurable here")
	}
	var baseline *experiments.ParallelResult
	for _, row := range rec.Results {
		if row.Workers > 1 && row.Workers <= rec.CPUs && row.Workers <= runtime.NumCPU() {
			baseline = row
		}
	}
	if baseline == nil {
		t.Skipf("no recorded row fits this machine's %d CPUs", runtime.NumCPU())
	}
	cfg := experiments.Config{Scale: 0.02, Seeds: 24, Seed: 1}
	_, rows, _, _, err := experiments.ParallelRun(context.Background(), cfg, []int{1, baseline.Workers})
	if err != nil {
		t.Fatal(err)
	}
	fresh := rows[len(rows)-1].Speedup
	if fresh < 0.9*baseline.Speedup {
		t.Errorf("scaling regression at %d workers: fresh self-speedup %.2fx vs committed %.2fx (>10%% below baseline)",
			baseline.Workers, fresh, baseline.Speedup)
	} else {
		t.Logf("scaling at %d workers: fresh %.2fx vs committed %.2fx", baseline.Workers, fresh, baseline.Speedup)
	}
}
