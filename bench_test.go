// Benchmarks regenerating every table and figure in the paper's
// evaluation chapter, plus ablations of the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment at the small
// scale (paper sizes shrunk so the suite finishes on laptop cores; use
// cmd/gtlexp -scale full for paper-size runs) and reports the headline
// quantity of the table/figure as a custom metric alongside ns/op.
package tanglefind_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"tanglefind/internal/core"
	"tanglefind/internal/experiments"
	"tanglefind/internal/generate"
	"tanglefind/internal/netlist"
	"tanglefind/internal/place"
	"tanglefind/internal/route"
)

// benchCfg keeps every benchmark iteration a few hundred ms on 2 cores.
var benchCfg = experiments.Config{Scale: 0.04, Seeds: 48, Seed: 1}

// ---------------------------------------------------------------------
// Table 1 — one benchmark per random-graph case.
// ---------------------------------------------------------------------

func benchTable1(b *testing.B, caseIdx int) {
	b.ReportAllocs()
	var worstMiss, worstOver float64
	found := 0
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1Run(context.Background(), experiments.Table1Cases[caseIdx], benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		worstMiss, worstOver, found = 0, 0, 0
		for _, blk := range r.Blocks {
			if blk.Found {
				found++
			}
			if blk.MissPct > worstMiss {
				worstMiss = blk.MissPct
			}
			if blk.OverPct > worstOver {
				worstOver = blk.OverPct
			}
		}
	}
	b.ReportMetric(float64(found), "GTLs-found")
	b.ReportMetric(worstMiss, "worst-miss-%")
	b.ReportMetric(worstOver, "worst-over-%")
}

func BenchmarkTable1_Case1(b *testing.B) { benchTable1(b, 0) }
func BenchmarkTable1_Case2(b *testing.B) { benchTable1(b, 1) }
func BenchmarkTable1_Case3(b *testing.B) { benchTable1(b, 2) }
func BenchmarkTable1_Case4(b *testing.B) { benchTable1(b, 3) }

// ---------------------------------------------------------------------
// Table 2 — one benchmark per ISPD proxy circuit.
// ---------------------------------------------------------------------

func benchTable2(b *testing.B, name string) {
	b.ReportAllocs()
	p, ok := generate.ProfileByName(name)
	if !ok {
		b.Fatalf("unknown profile %s", name)
	}
	var found int
	var topScore float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2Run(context.Background(), p, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		found = r.Found
		if len(r.Top) > 0 {
			topScore = r.Top[0].GTLSD
		}
	}
	b.ReportMetric(float64(found), "GTLs-found")
	b.ReportMetric(topScore, "top-GTL-SD")
}

func BenchmarkTable2_Bigblue1(b *testing.B) { benchTable2(b, "bigblue1") }
func BenchmarkTable2_Bigblue2(b *testing.B) { benchTable2(b, "bigblue2") }
func BenchmarkTable2_Bigblue3(b *testing.B) { benchTable2(b, "bigblue3") }
func BenchmarkTable2_Adaptec1(b *testing.B) { benchTable2(b, "adaptec1") }
func BenchmarkTable2_Adaptec2(b *testing.B) { benchTable2(b, "adaptec2") }
func BenchmarkTable2_Adaptec3(b *testing.B) { benchTable2(b, "adaptec3") }

// ---------------------------------------------------------------------
// Table 3 — the industrial proxy.
// ---------------------------------------------------------------------

func BenchmarkTable3_Industrial(b *testing.B) {
	b.ReportAllocs()
	recovered := 0
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3Run(context.Background(), benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		recovered = 0
		for _, blk := range r.Blocks {
			if blk.Found && blk.MissPct <= 5 && blk.OverPct <= 5 {
				recovered++
			}
		}
	}
	b.ReportMetric(float64(recovered), "blocks-recovered")
}

// ---------------------------------------------------------------------
// Figures 2 and 3 — the agglomeration score curves.
// ---------------------------------------------------------------------

func benchFigure23(b *testing.B, m core.Metric) {
	b.ReportAllocs()
	var insideMin, outsideMin float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure23(context.Background(), m, benchCfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		insideMin, outsideMin = r.InsideMinV, r.OutsideMinV
	}
	b.ReportMetric(insideMin, "inside-min")
	b.ReportMetric(outsideMin, "outside-min")
}

func BenchmarkFigure2_NGTLS(b *testing.B) { benchFigure23(b, core.MetricNGTLS) }
func BenchmarkFigure3_GTLSD(b *testing.B) { benchFigure23(b, core.MetricGTLSD) }

// ---------------------------------------------------------------------
// Figure 5 — metric comparison along one ordering.
// ---------------------------------------------------------------------

func BenchmarkFigure5_MetricCurves(b *testing.B) {
	b.ReportAllocs()
	var sep float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(context.Background(), benchCfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		sep = float64(r.RatioCutMinK) / float64(r.NGTLSMinK)
	}
	// > 1 means ratio cut's minimum sits right of the GTL dip, the
	// paper's qualitative claim.
	b.ReportMetric(sep, "ratiocut-min/gtl-min")
}

// ---------------------------------------------------------------------
// Figures 4 and 6 — placement overlays.
// ---------------------------------------------------------------------

func BenchmarkFigure4_Bigblue1Overlay(b *testing.B) {
	b.ReportAllocs()
	gtls := 0
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure46(context.Background(), "bigblue1", benchCfg, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		gtls = r.GTLs
	}
	b.ReportMetric(float64(gtls), "GTLs-shown")
}

func BenchmarkFigure6_IndustrialOverlay(b *testing.B) {
	b.ReportAllocs()
	gtls := 0
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure46(context.Background(), "industrial", benchCfg, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		gtls = r.GTLs
	}
	b.ReportMetric(float64(gtls), "GTLs-shown")
}

// ---------------------------------------------------------------------
// Figures 1 and 7 + §5.1.3 statistics — the inflation experiment.
// ---------------------------------------------------------------------

func BenchmarkFigure7_Inflation(b *testing.B) {
	b.ReportAllocs()
	var r *experiments.InflationResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Inflation(context.Background(), benchCfg, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Ratio100, "overflow-reduction-x")
	b.ReportMetric(r.Ratio90, "near-overflow-reduction-x")
	b.ReportMetric(r.RatioAvg, "avg-congestion-reduction-x")
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5).
// ---------------------------------------------------------------------

// ablationWorkload builds one shared workload: a random graph with a
// planted block, reused across ablation variants.
func ablationWorkload(b *testing.B) (*generate.RandomGraph, core.Options) {
	b.Helper()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  20_000,
		Blocks: []generate.BlockSpec{{Size: 1200}},
		Seed:   17,
	})
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seeds = 48
	opt.MaxOrderLen = 4000
	return rg, opt
}

func ablationRecovery(b *testing.B, rg *generate.RandomGraph, res *core.Result) float64 {
	b.Helper()
	in := make(map[netlist.CellID]bool, len(rg.Blocks[0]))
	for _, c := range rg.Blocks[0] {
		in[c] = true
	}
	best := 0
	for _, g := range res.GTLs {
		hit := 0
		for _, c := range g.Members {
			if in[c] {
				hit++
			}
		}
		if hit > best {
			best = hit
		}
	}
	return 100 * float64(best) / float64(len(rg.Blocks[0]))
}

func benchAblation(b *testing.B, mutate func(*core.Options)) {
	b.ReportAllocs()
	rg, opt := ablationWorkload(b)
	mutate(&opt)
	var recovery float64
	for i := 0; i < b.N; i++ {
		res, err := core.Find(rg.Netlist, opt)
		if err != nil {
			b.Fatal(err)
		}
		recovery = ablationRecovery(b, rg, res)
	}
	b.ReportMetric(recovery, "block-recovery-%")
}

// BenchmarkAblation_Ordering compares the paper's connection-weighted
// growth against plain min-cut greed and BFS (§3.2.1's argument).
func BenchmarkAblation_Ordering_Weighted(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Ordering = core.OrderWeighted })
}
func BenchmarkAblation_Ordering_MinCut(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Ordering = core.OrderMinCut })
}
func BenchmarkAblation_Ordering_BFS(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Ordering = core.OrderBFS })
}

// BenchmarkAblation_Refinement toggles Phase III (boundary-seed error
// recovery).
func BenchmarkAblation_Refinement_On(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Refine = true })
}
func BenchmarkAblation_Refinement_Off(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Refine = false })
}

// BenchmarkAblation_Metric compares nGTL-S and GTL-SD as the driver Φ.
func BenchmarkAblation_Metric_GTLSD(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Metric = core.MetricGTLSD })
}
func BenchmarkAblation_Metric_NGTLS(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Metric = core.MetricNGTLS })
}

// BenchmarkAblation_BigNetSkip varies the paper's λ >= 20 update-skip
// threshold.
func BenchmarkAblation_BigNetSkip_20(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.BigNetSkip = 20 })
}
func BenchmarkAblation_BigNetSkip_Off(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.BigNetSkip = 0 })
}

// ---------------------------------------------------------------------
// Multilevel pipeline — flat vs coarsen → detect → project + refine on
// the same workloads, reporting the wall-clock speedup and the
// planted-cell recovery of the multilevel run. The CI bench-smoke
// shard executes this once per PR, so the speed/quality trade stays on
// the perf trajectory (gtlexp -exp multilevel -scale full regenerates
// the committed BENCH_multilevel.json record at paper scale).
// ---------------------------------------------------------------------

func BenchmarkMultilevel_FlatVsMultilevel(b *testing.B) {
	b.ReportAllocs()
	var speedup, recovery float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.Multilevel(context.Background(), benchCfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		last := results[len(results)-1]
		speedup, recovery = last.Speedup, last.MultiRecovery
	}
	b.ReportMetric(speedup, "speedup-x")
	b.ReportMetric(recovery, "ml-recovery-%")
}

// ---------------------------------------------------------------------
// Incremental detection — full re-detection of an ECO-patched netlist
// vs FindIncremental reusing the baseline run's recorded seed state,
// on the Table 1 case 3 workload. Two edit classes: a localized
// background-site rewire (the common ECO; nearly every seed replays)
// and a rewire inside the planted tangle itself (the worst case: the
// tangle's own refined seeds must re-run). The CI bench-smoke shard
// executes this once per PR; gtlexp -exp incremental -dump .
// regenerates the committed BENCH_incremental.json record.
// ---------------------------------------------------------------------

func BenchmarkIncremental_DeltaVsFull(b *testing.B) {
	b.ReportAllocs()
	// Larger than benchCfg on purpose: seed-reuse physics (footprint
	// fraction vs dirty-region size) only shows at a realistic
	// block-to-netlist ratio; 0.04 scale turns Z into half the design.
	cfg := experiments.Config{Scale: 0.25, Seeds: 64, Seed: 1}
	var siteSpeedup, blockSpeedup, reused float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.Incremental(context.Background(), cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.Match {
				b.Fatalf("%s: incremental diverged from full re-detection", r.Name)
			}
			switch r.Name {
			case "case3_site_edit":
				siteSpeedup = r.Speedup
				reused = float64(r.ReusedSeeds)
			case "case3_block_edit":
				blockSpeedup = r.Speedup
			}
		}
	}
	b.ReportMetric(siteSpeedup, "site-speedup-x")
	b.ReportMetric(blockSpeedup, "block-speedup-x")
	b.ReportMetric(reused, "site-seeds-reused")
}

// ---------------------------------------------------------------------
// Engine reuse — the allocation win of the pooled Finder. Each pair
// runs the identical workload twice per iteration: the Cold variant
// through the one-shot compatibility wrapper (fresh worker state both
// times), the Reused variant through one long-lived Finder whose
// pooled growers/evaluators/ordering buffers survive across runs.
// Compare allocs/op between the pairs.
// ---------------------------------------------------------------------

func engineBenchTable1(b *testing.B) (*netlist.Netlist, core.Options) {
	b.Helper()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  10_000, // Table 1 case 1 geometry
		Blocks: []generate.BlockSpec{{Size: 500}},
		Seed:   7,
	})
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seeds = 32
	opt.MaxOrderLen = 2000
	return rg.Netlist, opt
}

func engineBenchTable2(b *testing.B) (*netlist.Netlist, core.Options) {
	b.Helper()
	p, ok := generate.ProfileByName("bigblue1")
	if !ok {
		b.Fatal("bigblue1 profile missing")
	}
	d, err := generate.NewISPDProxy(p, benchCfg.Scale, benchCfg.Seed*100+7)
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seeds = benchCfg.Seeds
	opt.MaxOrderLen = d.Netlist.NumCells() / 2
	return d.Netlist, opt
}

func benchEngineCold(b *testing.B, nl *netlist.Netlist, opt core.Options) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for run := 0; run < 2; run++ {
			if _, err := core.Find(nl, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchEngineReused(b *testing.B, nl *netlist.Netlist, opt core.Options) {
	f, err := core.NewFinder(nl)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Warm the pool so steady-state reuse is what gets measured.
	if _, err := f.Find(ctx, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for run := 0; run < 2; run++ {
			if _, err := f.Find(ctx, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkEngineColdFind2x_Table1Case1(b *testing.B) {
	nl, opt := engineBenchTable1(b)
	benchEngineCold(b, nl, opt)
}

func BenchmarkEngineReused2x_Table1Case1(b *testing.B) {
	nl, opt := engineBenchTable1(b)
	benchEngineReused(b, nl, opt)
}

func BenchmarkEngineColdFind2x_Table2Bigblue1(b *testing.B) {
	nl, opt := engineBenchTable2(b)
	benchEngineCold(b, nl, opt)
}

func BenchmarkEngineReused2x_Table2Bigblue1(b *testing.B) {
	nl, opt := engineBenchTable2(b)
	benchEngineReused(b, nl, opt)
}

// ---------------------------------------------------------------------
// CSR substrate — flat-layout traversal, clique expansion and binary
// I/O against the seed representations, on a 100K-cell netlist.
// ---------------------------------------------------------------------

// substrate100K builds the shared 100K-cell workload (Table 1 case 2/3
// geometry) once per benchmark binary.
var substrate100K = struct {
	once sync.Once
	nl   *netlist.Netlist
}{}

func bench100K(b *testing.B) *netlist.Netlist {
	b.Helper()
	substrate100K.once.Do(func() {
		rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
			Cells:  100_000,
			Blocks: []generate.BlockSpec{{Size: 5000}},
			Seed:   11,
		})
		if err != nil {
			panic(err)
		}
		substrate100K.nl = rg.Netlist
	})
	return substrate100K.nl
}

// BenchmarkTraversal_CSR walks every cell's pins then every incident
// net's size — the finder's Phase I access pattern — over the flat CSR
// arrays.
func BenchmarkTraversal_CSR(b *testing.B) {
	nl := bench100K(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := 0
		for c := 0; c < nl.NumCells(); c++ {
			for _, n := range nl.CellPins(netlist.CellID(c)) {
				acc += nl.NetSize(n)
			}
		}
		if acc == 0 {
			b.Fatal("empty traversal")
		}
	}
}

// BenchmarkTraversal_Sliced is the same walk over the seed
// representation ([][]NetID / [][]CellID slice-of-slices), rebuilt
// here for comparison.
func BenchmarkTraversal_Sliced(b *testing.B) {
	nl := bench100K(b)
	cellPins := make([][]netlist.NetID, nl.NumCells())
	for c := range cellPins {
		cellPins[c] = append([]netlist.NetID(nil), nl.CellPins(netlist.CellID(c))...)
	}
	netPins := make([][]netlist.CellID, nl.NumNets())
	for n := range netPins {
		netPins[n] = append([]netlist.CellID(nil), nl.NetPins(netlist.NetID(n))...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := 0
		for c := range cellPins {
			for _, n := range cellPins[c] {
				acc += len(netPins[n])
			}
		}
		if acc == 0 {
			b.Fatal("empty traversal")
		}
	}
}

// BenchmarkCliqueExpand_TwoPass measures the count-then-fill flat
// expansion.
func BenchmarkCliqueExpand_TwoPass(b *testing.B) {
	nl := bench100K(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adj := nl.CliqueExpand(20)
		if adj.Degree(0) < 0 {
			b.Fatal("bad adjacency")
		}
	}
}

// legacyCliqueExpand is the seed implementation (append into per-cell
// edge slices, then sort/merge/copy), kept here as the baseline.
func legacyCliqueExpand(nl *netlist.Netlist, maxNetSize int) *netlist.Adjacency {
	n := nl.NumCells()
	type edge struct {
		to netlist.CellID
		w  float64
	}
	adj := make([][]edge, n)
	for ni := 0; ni < nl.NumNets(); ni++ {
		cells := nl.NetPins(netlist.NetID(ni))
		k := len(cells)
		if k < 2 || (maxNetSize > 0 && k > maxNetSize) {
			continue
		}
		w := 1.0 / float64(k-1)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				adj[cells[i]] = append(adj[cells[i]], edge{cells[j], w})
				adj[cells[j]] = append(adj[cells[j]], edge{cells[i], w})
			}
		}
	}
	out := &netlist.Adjacency{Start: make([]int32, n+1)}
	for c := 0; c < n; c++ {
		es := adj[c]
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
		m := 0
		for i := 0; i < len(es); {
			j := i
			w := 0.0
			for j < len(es) && es[j].to == es[i].to {
				w += es[j].w
				j++
			}
			es[m] = edge{es[i].to, w}
			m++
			i = j
		}
		es = es[:m]
		out.Start[c+1] = out.Start[c] + int32(m)
		for _, e := range es {
			out.Adj = append(out.Adj, e.to)
			out.Weight = append(out.Weight, e.w)
		}
		adj[c] = nil
	}
	return out
}

func BenchmarkCliqueExpand_LegacyAppend(b *testing.B) {
	nl := bench100K(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adj := legacyCliqueExpand(nl, 20)
		if adj.Degree(0) < 0 {
			b.Fatal("bad adjacency")
		}
	}
}

// BenchmarkLoad_TFNet and BenchmarkLoad_TFB parse the same 100K-cell
// netlist from memory; the acceptance target is binary >= 5x faster.
func BenchmarkLoad_TFNet(b *testing.B) {
	nl := bench100K(b)
	var buf bytes.Buffer
	if err := nl.Write(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := netlist.Read(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if got.NumPins() != nl.NumPins() {
			b.Fatal("load mismatch")
		}
	}
}

func BenchmarkLoad_TFB(b *testing.B) {
	nl := bench100K(b)
	var buf bytes.Buffer
	if err := nl.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := netlist.ReadBinary(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if got.NumPins() != nl.NumPins() {
			b.Fatal("load mismatch")
		}
	}
}

// BenchmarkBuild_100K measures Builder.Build's two-pass CSR assembly.
func BenchmarkBuild_100K(b *testing.B) {
	nl := bench100K(b)
	var bld netlist.Builder
	bld.AddCells(nl.NumCells())
	for n := 0; n < nl.NumNets(); n++ {
		bld.AddNet("", nl.NetPins(netlist.NetID(n))...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		if got.NumPins() != nl.NumPins() {
			b.Fatal("build mismatch")
		}
	}
}

// ---------------------------------------------------------------------
// Substrate microbenchmarks.
// ---------------------------------------------------------------------

func BenchmarkSubstrate_Place20K(b *testing.B) {
	b.ReportAllocs()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 20_000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := place.Place(rg.Netlist, place.Rect{}, place.Options{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrate_RUDY20K(b *testing.B) {
	b.ReportAllocs()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{Cells: 20_000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(rg.Netlist, place.Rect{}, place.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Estimate(rg.Netlist, pl, 64, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrate_Ordering(b *testing.B) {
	b.ReportAllocs()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  50_000,
		Blocks: []generate.BlockSpec{{Size: 4000}},
		Seed:   5,
	})
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ord := core.GrowOrdering(rg.Netlist, rg.Blocks[0][0], 8000, opt)
		if ord.Len() < 8000 {
			b.Fatalf("short ordering: %d", ord.Len())
		}
	}
}

// ---------------------------------------------------------------------
// Parallel scaling — the paper ran 8 pthreads and projects 2-5x gains
// from more parallel runs; these benches measure the goroutine pool's
// scaling on this machine.
// ---------------------------------------------------------------------

func benchWorkers(b *testing.B, workers int) {
	b.ReportAllocs()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  30_000,
		Blocks: []generate.BlockSpec{{Size: 2000}},
		Seed:   13,
	})
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seeds = 32
	opt.MaxOrderLen = 5000
	opt.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Find(rg.Netlist, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallel_1Worker(b *testing.B)  { benchWorkers(b, 1) }
func BenchmarkParallel_2Workers(b *testing.B) { benchWorkers(b, 2) }

// BenchmarkFind_Parallel is the CI scaling smoke: the work-stealing
// scheduler on a multilevel workload at 1 worker and at NumCPU
// workers (deduplicated on single-core boxes), with the steal traffic
// reported as metrics. The committed BENCH_parallel.json record holds
// the full sweep; TestParallelScalingGuard compares a fresh
// measurement against it.
func BenchmarkFind_Parallel(b *testing.B) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  60_000,
		Blocks: []generate.BlockSpec{{Size: 3000}, {Size: 3000}},
		Seed:   19,
	})
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.NewFinder(rg.Netlist)
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seeds = 48
	opt.MaxOrderLen = 6000
	opt.Levels = 2
	opt.MinCoarseCells = 4096
	widths := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		opt.Workers = w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var steals, stolen int64
			for i := 0; i < b.N; i++ {
				res, err := f.Find(context.Background(), opt)
				if err != nil {
					b.Fatal(err)
				}
				if res.Sched != nil {
					steals, stolen = res.Sched.Steals, res.Sched.SeedsStolen
				}
			}
			b.ReportMetric(float64(steals), "steals")
			b.ReportMetric(float64(stolen), "seeds-stolen")
		})
	}
}

// BenchmarkFind_Instrumented measures the stage-timing instrumentation
// against the identical BenchmarkFind_Parallel workload with the
// per-seed accounting toggled off — the two sub-benches bound the
// telemetry overhead (TestStageTimingOverheadGuard asserts the <2%
// budget on multi-core machines).
func BenchmarkFind_Instrumented(b *testing.B) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  60_000,
		Blocks: []generate.BlockSpec{{Size: 3000}, {Size: 3000}},
		Seed:   19,
	})
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.NewFinder(rg.Netlist)
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seeds = 48
	opt.MaxOrderLen = 6000
	opt.Levels = 2
	opt.MinCoarseCells = 4096
	for _, timed := range []bool{true, false} {
		b.Run(fmt.Sprintf("timing=%v", timed), func(b *testing.B) {
			b.ReportAllocs()
			prev := core.SetStageTiming(timed)
			defer core.SetStageTiming(prev)
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := f.Find(context.Background(), opt)
				if err != nil {
					b.Fatal(err)
				}
				total = float64(res.Stages.Total().Milliseconds())
			}
			b.ReportMetric(total, "stage-ms")
		})
	}
}

// BenchmarkFind_HotPath is the CI single-core smoke for the absorb-loop
// overhaul: the flat pipeline at Workers=1 on one workload, once
// through the retained pre-overhaul baseline loop, once through the
// optimized loop, and once more with locality-permuted execution
// (Options.Relabel). The committed BENCH_hotpath.json record holds the
// full-scale before/after; TestHotPathSpeedupGuard validates it and
// re-measures the ratio live.
func BenchmarkFind_HotPath(b *testing.B) {
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  60_000,
		Blocks: []generate.BlockSpec{{Size: 3000}, {Size: 3000}},
		Seed:   19,
	})
	if err != nil {
		b.Fatal(err)
	}
	f, err := core.NewFinder(rg.Netlist)
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seeds = 48
	opt.MaxOrderLen = 6000
	opt.Workers = 1
	for _, sub := range []struct {
		name     string
		baseline bool
		relabel  bool
	}{
		{"baseline", true, false},
		{"optimized", false, false},
		{"relabel", false, true},
	} {
		f.SetBaselineGrowth(sub.baseline)
		opt.Relabel = sub.relabel
		b.Run(sub.name, func(b *testing.B) {
			b.ReportAllocs()
			gtls := 0
			for i := 0; i < b.N; i++ {
				res, err := f.Find(context.Background(), opt)
				if err != nil {
					b.Fatal(err)
				}
				gtls = len(res.GTLs)
			}
			b.ReportMetric(float64(gtls), "GTLs")
		})
	}
	f.SetBaselineGrowth(false)
}
