// The stage-timing overhead guard. The instrumentation only reads
// clocks — it must never change results, and its cost on the hot path
// must stay under 2% of the BenchmarkFind_Parallel workload. The
// structural half runs everywhere; the live timing comparison needs a
// machine with real cores on which min-of-N is stable, and skips
// loudly otherwise (CI's multi-core runners execute it).
package tanglefind_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"tanglefind"
	"tanglefind/internal/core"
	"tanglefind/internal/generate"
)

// overheadWorkload is a shrunk BenchmarkFind_Parallel: same shape
// (two planted blocks, multilevel), sized so min-of-N fits a test run.
func overheadWorkload(t testing.TB) (*core.Finder, core.Options) {
	t.Helper()
	rg, err := generate.NewRandomGraph(generate.RandomGraphSpec{
		Cells:  30_000,
		Blocks: []generate.BlockSpec{{Size: 2000}, {Size: 2000}},
		Seed:   19,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seeds = 24
	opt.MaxOrderLen = 3000
	opt.Levels = 2
	opt.MinCoarseCells = 4096
	return f, opt
}

func TestStageTimingOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison is not short")
	}
	f, opt := overheadWorkload(t)
	ctx := context.Background()

	// Structural half: timing defaults on, the facade toggle works,
	// and the toggle never changes detection results.
	if !core.StageTimingEnabled() {
		t.Fatal("stage timing must default on")
	}
	on, err := f.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	var stages tanglefind.StageTimings = on.Stages
	if len(stages) == 0 || stages[core.StageGrow] <= 0 {
		t.Fatalf("instrumented run has no stage breakdown: %v", stages)
	}
	if prev := tanglefind.SetStageTiming(false); !prev {
		t.Fatal("facade toggle did not report the enabled default")
	}
	defer tanglefind.SetStageTiming(true)
	off, err := f.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(on.GTLs) != len(off.GTLs) {
		t.Fatalf("timing toggle changed results: %d vs %d GTLs", len(on.GTLs), len(off.GTLs))
	}
	for i := range on.GTLs {
		if on.GTLs[i].Score != off.GTLs[i].Score {
			t.Fatalf("timing toggle changed GTL %d score", i)
		}
	}

	// Live half: min-of-N wall time with timing on must stay within 2%
	// of timing off. Minimum-of filters scheduler noise; a single-core
	// box cannot produce a stable minimum under its own test harness.
	if runtime.NumCPU() < 2 {
		t.Skipf("SKIPPING live overhead comparison: %d CPU is too noisy for a 2%% bound; CI's multi-core runners enforce it", runtime.NumCPU())
	}
	minRun := func(timed bool) time.Duration {
		prev := core.SetStageTiming(timed)
		defer core.SetStageTiming(prev)
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			start := time.Now()
			if _, err := f.Find(ctx, opt); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Interleave a warmup before measuring so pools are hot for both.
	minRun(true)
	offBest := minRun(false)
	onBest := minRun(true)
	overhead := float64(onBest-offBest) / float64(offBest)
	t.Logf("timing on %v, off %v, overhead %.2f%%", onBest, offBest, overhead*100)
	if overhead > 0.02 {
		t.Errorf("stage timing costs %.2f%% (> 2%% budget): on %v vs off %v", overhead*100, onBest, offBest)
	}
}
