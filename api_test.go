package tanglefind_test

import (
	"context"
	"fmt"
	"testing"

	"tanglefind"
)

// TestPublicAPIFlow exercises the whole facade: generate → find →
// place → congest → all three mitigations.
func TestPublicAPIFlow(t *testing.T) {
	rg, err := tanglefind.NewRandomGraph(tanglefind.RandomGraphSpec{
		Cells:  8000,
		Blocks: []tanglefind.BlockSpec{{Size: 800}},
		Seed:   12,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl := rg.Netlist
	if nl.AvgPins() <= 0 {
		t.Fatal("bad netlist")
	}

	opt := tanglefind.DefaultOptions()
	opt.Seeds = 48
	opt.MaxOrderLen = 3000
	res, err := tanglefind.Find(nl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GTLs) == 0 {
		t.Fatal("no GTLs found")
	}
	g := res.GTLs[0]
	if g.Size() < 700 || g.GTLSD > 0.2 {
		t.Errorf("best GTL: size %d score %.3f", g.Size(), g.GTLSD)
	}

	// Scores agree with the standalone metric functions.
	if got := tanglefind.GTLSD(g.Cut, g.Size(), g.Pins, g.Rent, res.AG); got != g.GTLSD {
		t.Errorf("GTLSD mismatch: %v vs %v", got, g.GTLSD)
	}
	if got := tanglefind.NGTLScore(g.Cut, g.Size(), g.Rent, res.AG); got != g.NGTLS {
		t.Errorf("NGTLScore mismatch: %v vs %v", got, g.NGTLS)
	}
	if rc := tanglefind.RatioCut(g.Cut, g.Size()); rc <= 0 {
		t.Errorf("RatioCut = %v", rc)
	}
	if _, ok := tanglefind.RentExponent(g.Cut, g.Size(), g.Pins); !ok {
		t.Error("RentExponent undefined for a real GTL")
	}

	groups := [][]tanglefind.CellID{g.Members}

	// Placement + congestion.
	pl, err := tanglefind.Place(nl, tanglefind.Rect{}, tanglefind.PlaceOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tanglefind.HPWL(nl, pl) <= 0 {
		t.Error("zero HPWL")
	}
	m, err := tanglefind.EstimateCongestion(nl, pl, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	m.SetCapacityRelative(1.2)
	st := tanglefind.CongestionStatsFor(nl, pl, m)
	if st.MaxTile <= 0 {
		t.Error("empty congestion map")
	}

	// Mitigation 1: inflation.
	inflated, err := tanglefind.Inflate(nl, groups, 4)
	if err != nil {
		t.Fatal(err)
	}
	if inflated.CellArea(g.Members[0]) != 4 {
		t.Error("inflation did not take")
	}

	// Mitigation 2: soft blocks.
	plSoft, err := tanglefind.PlaceSoftBlocks(nl, groups, tanglefind.Rect{}, tanglefind.PlaceOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tanglefind.HPWL(nl, plSoft) <= 0 {
		t.Error("soft-block placement degenerate")
	}
	cl, err := tanglefind.Cluster(nl, groups)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Clustered.NumCells() != nl.NumCells()-g.Size()+1 {
		t.Errorf("clustered cells = %d", cl.Clustered.NumCells())
	}

	// Mitigation 3: resynthesis.
	rs, err := tanglefind.Decompose(nl, groups, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CellsAdded == 0 {
		t.Error("nothing decomposed in a dense block")
	}
	if err := rs.Netlist.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeEngine exercises the engine surface through the facade:
// reusable Finder, progress reporting, sharded runs and the batch
// entry point, all agreeing with the one-shot Find.
func TestFacadeEngine(t *testing.T) {
	rg, err := tanglefind.NewRandomGraph(tanglefind.RandomGraphSpec{
		Cells:  6000,
		Blocks: []tanglefind.BlockSpec{{Size: 500}},
		Seed:   21,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := tanglefind.DefaultOptions()
	opt.Seeds = 32
	opt.MaxOrderLen = 2000
	ref, err := tanglefind.Find(rg.Netlist, opt)
	if err != nil {
		t.Fatal(err)
	}

	f, err := tanglefind.NewFinder(rg.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	var last tanglefind.Progress
	opt.Progress = func(p tanglefind.Progress) { last = p }
	ctx := context.Background()
	res, err := f.Find(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if last.SeedsDone != last.SeedsTotal || last.SeedsTotal == 0 {
		t.Errorf("final progress %+v, want all seeds done", last)
	}
	if len(res.GTLs) != len(ref.GTLs) {
		t.Fatalf("engine found %d GTLs, one-shot %d", len(res.GTLs), len(ref.GTLs))
	}

	// Sharded run through the facade types.
	opt.Progress = nil
	half := opt.Seeds / 2
	s1, err := f.FindShard(ctx, opt, 0, half)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.FindShard(ctx, opt, half, opt.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if s1.SeedsRun()+s2.SeedsRun() != opt.Seeds {
		t.Errorf("shards ran %d+%d seeds, want %d", s1.SeedsRun(), s2.SeedsRun(), opt.Seeds)
	}
	merged, err := f.Merge(opt, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.GTLs) != len(ref.GTLs) {
		t.Errorf("sharded run found %d GTLs, want %d", len(merged.GTLs), len(ref.GTLs))
	}

	// Batch mode over two netlists.
	rg2, err := tanglefind.NewRandomGraph(tanglefind.RandomGraphSpec{
		Cells:  6000,
		Blocks: []tanglefind.BlockSpec{{Size: 400}},
		Seed:   22,
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := tanglefind.FindMany(ctx, []*tanglefind.Netlist{rg.Netlist, rg2.Netlist}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0] == nil || results[1] == nil {
		t.Fatalf("batch results incomplete: %v", results)
	}
	if len(results[0].GTLs) != len(ref.GTLs) {
		t.Errorf("batch result differs from solo run")
	}
}

// TestFacadeOptionsWire covers the serving-layer exports: options
// parsing/round-tripping and the engine introspection types, all
// without touching internal packages.
func TestFacadeOptionsWire(t *testing.T) {
	opt, err := tanglefind.ParseOptions([]byte(`{"seeds": 9, "metric": "ngtls", "ordering": "bfs"}`))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Seeds != 9 || opt.Metric != tanglefind.MetricNGTLS || opt.Ordering != tanglefind.OrderBFS {
		t.Errorf("parsed options = %+v", opt)
	}
	if opt.BigNetSkip != tanglefind.DefaultOptions().BigNetSkip {
		t.Error("unset fields lost their defaults")
	}
	if _, err := tanglefind.ParseOptions([]byte(`{"sneeds": 9}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if m, err := tanglefind.ParseMetric("gtlsd"); err != nil || m != tanglefind.MetricGTLSD {
		t.Errorf("ParseMetric = %v, %v", m, err)
	}
	if o, err := tanglefind.ParseOrdering("mincut"); err != nil || o != tanglefind.OrderMinCut {
		t.Errorf("ParseOrdering = %v, %v", o, err)
	}

	// The per-seed trace types are reachable through the facade.
	rg, err := tanglefind.NewRandomGraph(tanglefind.RandomGraphSpec{Cells: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opt.MaxOrderLen = 800
	opt.KeepCurves = true
	res, err := tanglefind.Find(rg.Netlist, opt)
	if err != nil {
		t.Fatal(err)
	}
	var traces []tanglefind.SeedTrace = res.Seeds
	if len(traces) != opt.Seeds {
		t.Fatalf("traces = %d, want %d", len(traces), opt.Seeds)
	}
	var c *tanglefind.Curve = traces[0].Curve
	if c == nil || len(c.Scores) == 0 {
		t.Error("KeepCurves produced no curve through the facade")
	}
}

func TestISPDProfilesExposed(t *testing.T) {
	ps := tanglefind.ISPDProfiles()
	if len(ps) != 6 {
		t.Fatalf("profiles = %d, want 6", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.Cells < 100_000 {
			t.Errorf("%s: cells = %d", p.Name, p.Cells)
		}
	}
	for _, want := range []string{"bigblue1", "bigblue2", "bigblue3", "adaptec1", "adaptec2", "adaptec3"} {
		if !names[want] {
			t.Errorf("missing profile %s", want)
		}
	}
}

// ExampleFind demonstrates the minimal detection flow.
func ExampleFind() {
	rg, err := tanglefind.NewRandomGraph(tanglefind.RandomGraphSpec{
		Cells:  10_000,
		Blocks: []tanglefind.BlockSpec{{Size: 500}},
		Seed:   7,
	})
	if err != nil {
		panic(err)
	}
	opt := tanglefind.DefaultOptions()
	opt.Seeds = 40
	opt.MaxOrderLen = 2000
	res, err := tanglefind.Find(rg.Netlist, opt)
	if err != nil {
		panic(err)
	}
	g := res.GTLs[0]
	fmt.Printf("found a %d-cell GTL with cut %d\n", g.Size(), g.Cut)
	// Output: found a 500-cell GTL with cut 16
}

func TestFacadeGenerators(t *testing.T) {
	h, err := tanglefind.NewHierarchical(tanglefind.HierSpec{Cells: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumCells() < 2000 {
		t.Errorf("hierarchical cells = %d", h.NumCells())
	}
	p := tanglefind.ISPDProfiles()[0]
	d, err := tanglefind.NewISPDProxy(p, 0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Netlist.NumCells() < 4000 || len(d.Structures) == 0 {
		t.Errorf("proxy: %d cells, %d structures", d.Netlist.NumCells(), len(d.Structures))
	}
	ind, err := tanglefind.NewIndustrialProxy(0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ind.Structures) != 5 {
		t.Errorf("industrial structures = %d", len(ind.Structures))
	}
}

func TestFacadeScores(t *testing.T) {
	if got := tanglefind.GTLScore(100, 100, 1.0); got != 1.0 {
		t.Errorf("GTLScore = %v", got)
	}
	if got := tanglefind.RentMetric(10, 100); got <= 0 {
		t.Errorf("RentMetric = %v", got)
	}
}

func TestFacadeRoutingHelpers(t *testing.T) {
	rg, err := tanglefind.NewRandomGraph(tanglefind.RandomGraphSpec{Cells: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := tanglefind.Place(rg.Netlist, tanglefind.Rect{}, tanglefind.PlaceOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tanglefind.EstimateCongestionLRoute(rg.Netlist, pl, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanDemand() <= 0 {
		t.Error("empty L-route map")
	}
	if tanglefind.MSTWirelength(rg.Netlist, pl) < tanglefind.HPWL(rg.Netlist, pl) {
		t.Error("MST < HPWL")
	}
	before := tanglefind.HPWL(rg.Netlist, pl)
	tanglefind.RefinePlacement(rg.Netlist, pl, 2000, 7)
	if after := tanglefind.HPWL(rg.Netlist, pl); after > before+1e-9 {
		t.Errorf("refinement worsened HPWL: %v -> %v", before, after)
	}
}
