// Package tanglefind detects tangled logic structures (GTLs) in VLSI
// netlists, reproducing "Detecting Tangled Logic Structures in VLSI
// Netlists" (Jindal, Alpert, Hu, Li, Nam, Winn — DAC 2010).
//
// A GTL is a large group of cells (hundreds to thousands) with far more
// internal than external connectivity — dissolved ROMs, dense MUX
// farms, datapath blobs. Placers pull such groups into tight clumps
// that become routing hotspots; identifying them before placement
// enables cell inflation, soft-block floorplanning or resynthesis.
//
// The package is a facade over the implementation in internal/…; it
// re-exports everything a downstream user needs:
//
//   - netlist modeling (Netlist, Builder) and Bookshelf/tfnet I/O
//   - the Rent's-rule-based scores (GTLScore, NGTLScore, GTLSD) plus
//     the classic baselines the paper compares against
//   - the three-phase TangledLogicFinder engine (Finder, Find,
//     FindMany, Options) with cancellation, progress and sharded runs
//   - workload generators (random graphs with planted GTLs, Rent-driven
//     hierarchical circuits, structural fragments, industrial proxy)
//   - a recursive-bisection placer, RUDY congestion estimation and the
//     cell-inflation mitigation flow
//
// Quick start:
//
//	rg, _ := tanglefind.NewRandomGraph(tanglefind.RandomGraphSpec{
//		Cells:  50_000,
//		Blocks: []tanglefind.BlockSpec{{Size: 4000}},
//		Seed:   1,
//	})
//	opt := tanglefind.DefaultOptions()
//	res, _ := tanglefind.Find(rg.Netlist, opt)
//	for _, g := range res.GTLs {
//		fmt.Printf("GTL: %d cells, cut %d, GTL-SD %.3f\n",
//			g.Size(), g.Cut, g.GTLSD)
//	}
package tanglefind

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"tanglefind/internal/core"
	"tanglefind/internal/generate"
	"tanglefind/internal/lint"
	"tanglefind/internal/netlist"
	"tanglefind/internal/place"
	"tanglefind/internal/route"
	"tanglefind/internal/telemetry"
)

// Netlist is a hypergraph of cells and nets. See Builder.
type Netlist = netlist.Netlist

// Builder incrementally assembles a Netlist.
type Builder = netlist.Builder

// CellID identifies a cell.
type CellID = netlist.CellID

// NetID identifies a net.
type NetID = netlist.NetID

// Options configures the finder; start from DefaultOptions. Options
// is JSON-round-trippable (see ParseOptions).
type Options = core.Options

// Metric selects the driving score Φ.
type Metric = core.Metric

// Ordering selects the Phase I growth rule.
type Ordering = core.Ordering

// Finder metric and ordering constants (see core documentation).
const (
	MetricGTLSD = core.MetricGTLSD
	MetricNGTLS = core.MetricNGTLS

	OrderWeighted = core.OrderWeighted
	OrderMinCut   = core.OrderMinCut
	OrderBFS      = core.OrderBFS
)

// Result is a finder run's outcome: disjoint GTLs sorted best-first.
type Result = core.Result

// GTL is one detected group of tangled logic.
type GTL = core.GTL

// Finder is the long-lived, reusable detection engine: construct once
// per netlist with NewFinder, then run it many times. Repeated runs
// reuse pooled per-worker state, runs accept a context for
// cancellation/deadline, emit Options.Progress callbacks, and can be
// split into resumable shards (Finder.FindShard + Finder.Merge — both
// part of this facade via the Finder alias; no internal import
// needed).
type Finder = core.Finder

// ShardResult holds the raw outcomes of one seed-range chunk of a run;
// see Finder.FindShard and Finder.Merge.
type ShardResult = core.ShardResult

// SchedStats describes how a run's seed schedule was executed across
// workers: resolved worker count, per-worker seed counts and
// work-stealing traffic (Result.Sched). Purely diagnostic — results
// are bit-identical for any worker count.
type SchedStats = core.SchedStats

// StageTimings is the flat stage-name → wall-time breakdown attached
// to every completed run (Result.Stages) and, with the jobs layer's
// queue_wait/engine/merge stamps added, to every finished job result.
// It marshals to JSON as {"stage": milliseconds}. See Result.Stages
// for the stage names and their overlap semantics.
type StageTimings = telemetry.StageTimings

// SetStageTiming switches the engine's per-seed stage accounting on
// or off (default on), returning the previous setting. It exists for
// overhead measurement and never affects detection results.
func SetStageTiming(enabled bool) (prev bool) { return core.SetStageTiming(enabled) }

// ErrUnsupportedOptions is returned for option combinations an engine
// entry point does not implement. The full feature matrix — multilevel
// × incremental × sharded — now composes, so it is reserved for
// genuinely unsupported combinations (e.g. merging shards produced
// under a different Levels setting). Serving layers map it to HTTP 422.
var ErrUnsupportedOptions = core.ErrUnsupportedOptions

// Incremental detection: netlists evolve by deltas (ECO edits), and
// Finder.FindIncremental reuses a previous run's recorded seed state
// wherever an edit provably cannot have changed the computation.
type (
	// Delta is an ECO-style edit batch: add/remove cells, reconnect
	// nets, append/remove nets, with SplitNet/MergeNets helpers.
	// Applying a delta never renumbers surviving ids.
	Delta = netlist.Delta
	// NewCell describes one appended cell in a Delta.
	NewCell = netlist.NewCell
	// NewNet describes one appended net in a Delta.
	NewNet = netlist.NewNet
	// NetEdit replaces one net's pin set in a Delta.
	NetEdit = netlist.NetEdit
	// DeltaEffect summarizes an applied delta, including the dirty
	// cell set incremental detection guards reuse against.
	DeltaEffect = netlist.DeltaEffect
	// IncrStats is the reuse breakdown of a FindIncremental run.
	IncrStats = core.IncrStats
	// IncrementalState is the recorded per-seed state a
	// RecordIncremental run attaches to its Result.
	IncrementalState = core.IncrementalState
)

// ParseDelta decodes a JSON delta document (unknown fields rejected).
func ParseDelta(data []byte) (*Delta, error) { return netlist.ParseDelta(data) }

// ReadNetlist parses a netlist from r, autodetecting the format
// (.tfb binary or .tfnet text) by content.
func ReadNetlist(r io.Reader) (*Netlist, error) { return netlist.ReadAuto(r) }

// ReadNetlistFile loads a netlist from path, autodetecting the format.
func ReadNetlistFile(path string) (*Netlist, error) { return netlist.ReadFile(path) }

// SeedTrace records what one Phase I/II seed produced: ordering
// length, whether a candidate was extracted, and its size/score.
type SeedTrace = core.SeedTrace

// Curve is one seed's per-prefix score curve (retained in SeedTrace
// when Options.KeepCurves is set).
type Curve = core.Curve

// Progress is the engine's per-seed progress snapshot. It carries JSON
// tags, so serving layers can stream snapshots verbatim. During a
// multilevel run's detection pass, Progress.Level names the coarse
// hierarchy level the seeds are growing on.
type Progress = core.Progress

// LevelStats is one level's share of a multilevel run (Result.Levels):
// size, seeds run, candidates and boundary-refinement work per level.
type LevelStats = core.LevelStats

// ProgressFunc receives Progress snapshots via Options.Progress.
type ProgressFunc = core.ProgressFunc

// DefaultOptions returns the paper's parameter settings.
func DefaultOptions() Options { return core.DefaultOptions() }

// ParseOptions decodes a JSON document into validated Options: absent
// fields keep their DefaultOptions values and unknown fields are
// rejected. This is the entry point API layers use to accept finder
// options over the wire.
func ParseOptions(data []byte) (Options, error) { return core.ParseOptions(data) }

// ParseMetric maps a metric name ("gtlsd", "ngtls", or the paper
// forms) to its constant.
func ParseMetric(s string) (Metric, error) { return core.ParseMetric(s) }

// ParseOrdering maps an ordering name ("weighted", "mincut", "bfs") to
// its constant.
func ParseOrdering(s string) (Ordering, error) { return core.ParseOrdering(s) }

// NewFinder constructs a reusable detection engine over nl.
//
// The engine retains a bounded pool of per-worker scratch between runs
// (Finder.SetPoolCap / Finder.TrimPool manage it; Finder.MemoryEstimate
// reports it), and Options.Levels > 1 switches runs onto the
// multilevel coarsen → detect → project + refine pipeline.
func NewFinder(nl *Netlist) (*Finder, error) { return core.NewFinder(nl) }

// Multilevel substrate: the coarsening hierarchy the Levels>1 pipeline
// runs on, exposed for callers that want to inspect or reuse coarse
// views of a netlist directly.
type (
	// Hierarchy is a pyramid of coarsened netlists with fine↔coarse
	// projection maps; level 0 is the original netlist.
	Hierarchy = netlist.Hierarchy
	// CoarsenOptions configures BuildHierarchy.
	CoarsenOptions = netlist.CoarsenOptions
)

// BuildHierarchy coarsens nl by repeated heavy-edge matching into at
// most o.Levels levels (the original included), stopping early at
// o.MinCells cells or when matching stops making progress.
func BuildHierarchy(nl *Netlist, o CoarsenOptions) (*Hierarchy, error) {
	return netlist.BuildHierarchy(nl, o)
}

// Find runs the three-phase TangledLogicFinder over nl. It is a
// one-shot convenience over NewFinder + Finder.Find.
func Find(nl *Netlist, opt Options) (*Result, error) { return core.Find(nl, opt) }

// FindMany runs the finder over a batch of netlists with shared
// options; results are positional. On cancellation the slice holds
// whatever completed alongside the error.
func FindMany(ctx context.Context, nls []*Netlist, opt Options) ([]*Result, error) {
	return core.FindMany(ctx, nls, opt)
}

// Generators.
type (
	// RandomGraphSpec configures a random hypergraph with planted GTLs.
	RandomGraphSpec = generate.RandomGraphSpec
	// BlockSpec describes one planted block.
	BlockSpec = generate.BlockSpec
	// RandomGraph bundles a generated netlist with its ground truth.
	RandomGraph = generate.RandomGraph
	// HierSpec configures a Rent-rule-driven hierarchical netlist.
	HierSpec = generate.HierSpec
	// ISPDProfile parameterizes an ISPD benchmark proxy.
	ISPDProfile = generate.ISPDProfile
	// Design is a generated circuit with ground-truth structures.
	Design = generate.Design
	// Fragment is a structural logic generator output.
	Fragment = generate.Fragment
)

// NewRandomGraph builds a Garbers-style random graph with planted GTLs.
func NewRandomGraph(spec RandomGraphSpec) (*RandomGraph, error) {
	return generate.NewRandomGraph(spec)
}

// NewHierarchical builds a Rent-rule-obeying hierarchical netlist.
func NewHierarchical(spec HierSpec) (*Netlist, error) { return generate.NewHierarchical(spec) }

// NewISPDProxy builds a proxy for one ISPD placement benchmark.
func NewISPDProxy(p ISPDProfile, scale float64, seed uint64) (*Design, error) {
	return generate.NewISPDProxy(p, scale, seed)
}

// NewIndustrialProxy builds the dissolved-ROM industrial circuit proxy.
func NewIndustrialProxy(scale float64, seed uint64) (*Design, error) {
	return generate.NewIndustrialProxy(scale, seed)
}

// ISPDProfiles lists the six Table 2 circuit profiles.
func ISPDProfiles() []ISPDProfile { return generate.ISPDProfiles }

// Placement and congestion.
type (
	// Placement maps cells to die coordinates.
	Placement = place.Placement
	// Rect is an axis-aligned region.
	Rect = place.Rect
	// PlaceOptions configures the recursive-bisection placer.
	PlaceOptions = place.Options
	// CongestionMap is a RUDY demand map over a tile grid.
	CongestionMap = route.Map
	// CongestionStats are the paper's §5.1.3 statistics.
	CongestionStats = route.Stats
)

// Place runs recursive min-cut bisection placement.
func Place(nl *Netlist, die Rect, opt PlaceOptions) (*Placement, error) {
	return place.Place(nl, die, opt)
}

// HPWL returns the placement's half-perimeter wirelength.
func HPWL(nl *Netlist, pl *Placement) float64 { return place.HPWL(nl, pl) }

// Inflate multiplies the area of the given cell groups by factor.
func Inflate(nl *Netlist, groups [][]CellID, factor float64) (*Netlist, error) {
	return place.Inflate(nl, groups, factor)
}

// EstimateCongestion builds a RUDY congestion map for a placement.
func EstimateCongestion(nl *Netlist, pl *Placement, gridW, gridH int) (*CongestionMap, error) {
	return route.Estimate(nl, pl, gridW, gridH)
}

// EstimateCongestionLRoute builds the probabilistic two-bend (L-route)
// congestion map — a second model that tracks horizontal/vertical
// track demand per tile over an MST decomposition of every net.
func EstimateCongestionLRoute(nl *Netlist, pl *Placement, gridW, gridH int) (*CongestionMap, error) {
	return route.EstimateLRoute(nl, pl, gridW, gridH)
}

// MSTWirelength returns the Manhattan minimum-spanning-tree wirelength
// of a placement (a tighter routed-length estimate than HPWL).
func MSTWirelength(nl *Netlist, pl *Placement) float64 {
	return route.MSTWirelength(nl, pl)
}

// RefinePlacement improves a placement with greedy randomized cell
// swaps (detailed placement cleanup); HPWL never increases. It returns
// the number of accepted swaps.
func RefinePlacement(nl *Netlist, pl *Placement, rounds int, seed uint64) int {
	return place.RefineGreedy(nl, pl, rounds, seed)
}

// CongestionStatsFor evaluates the paper's congestion statistics
// (m.Capacity must be set, e.g. via m.SetCapacityRelative).
func CongestionStatsFor(nl *Netlist, pl *Placement, m *CongestionMap) CongestionStats {
	return route.ComputeStats(nl, pl, m)
}

// ---- Structural lint (internal/lint exports) ----

type (
	// LintConfig selects and parameterizes lint rules; the zero value
	// runs every rule with default thresholds.
	LintConfig = lint.Config
	// LintReport is the sorted, fingerprinted outcome of a lint run.
	LintReport = lint.Report
	// LintFinding is one reported structural defect.
	LintFinding = lint.Finding
	// LintRule is the extension point for custom structural checks.
	LintRule = lint.Rule
	// LintSeverity ranks findings: info < warning < error.
	LintSeverity = lint.Severity
)

// Lint severities.
const (
	LintInfo    = lint.SevInfo
	LintWarning = lint.SevWarning
	LintError   = lint.SevError
)

// Lint runs every enabled structural rule over the netlist. Rules that
// need signal direction are skipped (and reported as skipped) unless
// the netlist carries the driver annotation (Netlist.Directed).
func Lint(nl *Netlist, cfg LintConfig) *LintReport { return lint.Lint(nl, cfg) }

// LintDelta re-lints a delta-derived netlist, re-checking local rules
// only on the dirty neighborhood. The findings are identical to a full
// Lint of the child.
func LintDelta(prev *LintReport, parent, child *Netlist, dirty []CellID, cfg LintConfig) *LintReport {
	return lint.LintDelta(prev, parent, child, dirty, cfg)
}

// LintRules returns the builtin rule catalog in report order.
func LintRules() []LintRule { return lint.Rules() }

// ParseLintSeverity parses "info", "warning" or "error".
func ParseLintSeverity(s string) (LintSeverity, error) { return lint.ParseSeverity(s) }

// ParseLintConfig decodes a lint configuration document, rejecting
// unknown fields. Empty input yields the default configuration.
func ParseLintConfig(data []byte) (LintConfig, error) {
	var cfg LintConfig
	if len(data) == 0 {
		return cfg, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("tanglefind: lint config: %w", err)
	}
	return cfg, nil
}

// ---- Single-seed ordering exports (for notebooks and examples that
// want the paper's Phase I/II primitives without a full Finder run) ----

// OrderingStats is one grown linear ordering with its per-step cut and
// pin counts — the raw material of a score curve.
type OrderingStats = core.OrderingStats

// GrowOrdering grows a single Phase I linear ordering from seed.
func GrowOrdering(nl *Netlist, seed CellID, maxLen int, opt Options) *OrderingStats {
	return core.GrowOrdering(nl, seed, maxLen, opt)
}

// ScoreCurve evaluates metric m along an ordering (aG is the
// netlist's average pins per cell, Netlist.AvgPins).
func ScoreCurve(o *OrderingStats, m Metric, aG float64) *Curve {
	return core.ScoreCurve(o, m, aG)
}
