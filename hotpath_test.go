// The single-core hot-path regression guard over the committed
// BENCH_hotpath.json record, mirroring TestParallelScalingGuard's
// shape: structural validation of the committed record everywhere,
// plus a live before/after re-measure when the runner has the time.
// The record floor pins the speedup the committed measurement actually
// achieved (with a noise margin below it), so a regenerated record
// that silently loses the overhaul's advantage fails the build; the
// live comparison fails if the optimized engine has regressed to >10%
// slower than the retained baseline — a floor loose enough for
// shared-runner noise but tight enough to catch the optimized path
// losing its advantage outright.
package tanglefind_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"tanglefind/internal/experiments"
)

// hotPathRecordFloor is the regression bar for the committed record:
// a full-scale BENCH_hotpath.json must show the overhauled engine at
// least this far ahead of the retained pre-overhaul loop on the
// million-cell flat find. The committed measurement achieved 1.28x
// flat (1.32x with -relabel) on the 1-CPU reference runner, whose
// run-to-run noise band is roughly ±15%; the floor sits one noise
// band below that, so the guard pins what was actually measured and
// trips only when a regenerated record documents a real regression.
const hotPathRecordFloor = 1.1

func loadHotPathRecord(t *testing.T) *experiments.HotPathRecord {
	t.Helper()
	data, err := os.ReadFile("BENCH_hotpath.json")
	if err != nil {
		t.Fatalf("committed hotpath record missing: %v (regenerate with gtlexp -exp hotpath -scale full -dump .)", err)
	}
	var rec experiments.HotPathRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("BENCH_hotpath.json: %v", err)
	}
	return &rec
}

func TestHotPathSpeedupGuard(t *testing.T) {
	rec := loadHotPathRecord(t)
	if len(rec.Results) == 0 {
		t.Fatal("record holds no workload rows")
	}
	if rec.CPUs < 1 || rec.Scale <= 0 || rec.Seeds <= 0 {
		t.Fatalf("implausible record provenance: cpus=%d scale=%g seeds=%d", rec.CPUs, rec.Scale, rec.Seeds)
	}
	var million *experiments.HotPathResult
	for _, row := range rec.Results {
		if !row.Match || !row.RelabelMatch {
			t.Fatalf("%s row recorded an equivalence mismatch; the record is invalid", row.Name)
		}
		if row.BaselineMS <= 0 || row.OptimizedMS <= 0 || row.RelabelMS <= 0 ||
			row.Speedup <= 0 || row.RelabelSpeedup <= 0 {
			t.Fatalf("%s row has no timing: %+v", row.Name, row)
		}
		if row.Cells <= 0 || row.Pins <= 0 || row.GTLs <= 0 {
			t.Fatalf("%s row has implausible workload shape: %+v", row.Name, row)
		}
		if row.Name == "million" {
			million = row
		}
	}
	if million == nil {
		t.Fatal("record lacks the million-cell headline row")
	}
	if rec.Scale >= 1 && million.Speedup < hotPathRecordFloor {
		t.Errorf("full-scale million speedup %.2fx below the %.2fx record floor; the committed record no longer supports the headline claim",
			million.Speedup, hotPathRecordFloor)
	}

	if testing.Short() {
		t.Skip("short mode: record validated, live re-measure skipped")
	}
	// The live regression comparison: re-run the before/after on a
	// small million-geometry workload. Absolute speedups at this scale
	// are far below the full-scale headline (the baseline's pathologies
	// grow with the working set), so the floor only asserts that the
	// optimized engine has not fallen meaningfully behind the baseline.
	cfg := experiments.Config{Scale: 0.05, Seeds: 24, Seed: 1}
	fresh, err := experiments.HotPathRun(context.Background(), experiments.MultilevelCases[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Speedup < 0.9 {
		t.Errorf("live hot-path regression: optimized engine at %.2fx of baseline (<0.9x) on %d cells",
			fresh.Speedup, fresh.Cells)
	} else {
		t.Logf("live hot path: %.2fx optimized, %.2fx relabel over baseline on %d cells (committed full-scale: %.2fx)",
			fresh.Speedup, fresh.RelabelSpeedup, fresh.Cells, million.Speedup)
	}
}
